"""End-to-end robustness: recovery rate vs speech noise (extension).

Beyond the paper's evaluation: how often does the *intended* query's
result end up on screen, as a function of the speech channel's word error
rate?  This exercises the complete pipeline (noisy transcription ->
text-to-SQL -> candidates -> planning) and quantifies the headline claim
that multiplots absorb recognition noise.  The comparison point is a
"single result" system that only ever displays the top-1 interpretation
(what a standard voice interface does).
"""

from __future__ import annotations

from repro.core.greedy import GreedySolver
from repro.core.model import ScreenGeometry
from repro.core.problem import MultiplotSelectionProblem
from repro.datasets.workload import WorkloadGenerator
from repro.errors import ReproError
from repro.experiments.harness import ExperimentTable
from repro.nlq.candidates import CandidateGenerator
from repro.nlq.speech import SpeechSimulator, build_default_vocabulary
from repro.nlq.text_to_sql import TextToSql
from repro.sqldb.database import Database
from repro.sqldb.query import AggregateQuery


def _speak(query: AggregateQuery) -> str:
    """A natural-language utterance for a workload query."""
    func_words = {
        "count": "count of rows",
        "sum": "total",
        "avg": "average",
        "min": "minimum",
        "max": "maximum",
    }
    parts = [func_words[query.aggregate.func.value]]
    if query.aggregate.column is not None:
        parts.append(query.aggregate.column.replace("_", " "))
    if query.predicates:
        parts.append("for")
        clauses = []
        for predicate in query.predicates:
            clauses.append(f"{predicate.column.replace('_', ' ')} "
                           f"{predicate.value}")
        parts.append(" and ".join(clauses))
    return " ".join(parts)


def recovery_vs_wer(database: Database, table_name: str = "nyc311",
                    error_rates: tuple[float, ...] = (
                        0.0, 0.1, 0.2, 0.3),
                    num_queries: int = 15,
                    num_candidates: int = 20,
                    seed: int = 0) -> ExperimentTable:
    """Recovery rate of the intended query, multiplot vs top-1 display."""
    workload = WorkloadGenerator(database.table(table_name),
                                 seed=seed + 1)
    generator = CandidateGenerator(database, table_name)
    translator = TextToSql(database, table_name)
    vocabulary = build_default_vocabulary(database.vocabulary(table_name))
    geometry = ScreenGeometry(width_pixels=1400, num_rows=2)
    solver = GreedySolver()

    table = ExperimentTable(
        title="Recovery of the intended query vs word error rate",
        columns=("word_error_rate", "multiplot_recovery",
                 "top1_recovery", "n"))
    targets = [workload.random_query(exact_predicates=1)
               for _ in range(num_queries)]
    for wer in error_rates:
        speech = SpeechSimulator(vocabulary, word_error_rate=wer,
                                 seed=seed)
        multiplot_hits = 0
        top1_hits = 0
        total = 0
        for target in targets:
            utterance = _speak(target)
            transcript = speech.transcribe(utterance)
            try:
                seed_query = translator.translate(transcript)
                candidates = tuple(generator.candidates(seed_query,
                                                        num_candidates))
                problem = MultiplotSelectionProblem(candidates,
                                                    geometry=geometry)
                multiplot = solver.solve(problem).multiplot
            except ReproError:
                total += 1
                continue
            total += 1
            if seed_query == target:
                top1_hits += 1
            if multiplot.shows(target):
                multiplot_hits += 1
        table.add_row(wer, multiplot_hits / total, top1_hits / total,
                      total)
    return table
