"""Result tables: collection, formatting, and persistence.

Every experiment returns an :class:`ExperimentTable`; the benchmark suite
prints it (reproducing the paper's rows/series) and appends it to
``benchmarks/results/`` so a full run leaves a reviewable record.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Sequence


@dataclass
class ExperimentTable:
    """A titled table of experiment results."""

    title: str
    columns: Sequence[str]
    rows: list[tuple[Any, ...]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}")
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        index = list(self.columns).index(name)
        return [row[index] for row in self.rows]

    # ------------------------------------------------------------------

    def render(self) -> str:
        """Fixed-width text rendering of the table."""
        header = [str(c) for c in self.columns]
        body = [[_format_cell(v) for v in row] for row in self.rows]
        widths = [len(h) for h in header]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * min(len(self.title), 78)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.ljust(w)
                                   for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def save(self, directory: str, name: str) -> str:
        """Write the rendered table under *directory*; returns the path."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render() + "\n")
        return path


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
