"""User-study experiments: Figure 3, Table 1, Figure 12, Figure 13."""

from __future__ import annotations

import numpy as np

from repro.core.greedy import GreedySolver
from repro.core.model import ScreenGeometry
from repro.core.problem import MultiplotSelectionProblem
from repro.datasets.workload import WorkloadGenerator
from repro.execution.engine import MuveExecutor
from repro.execution.progressive import (
    ApproximateProcessing,
    DefaultProcessing,
    IncrementalPlotting,
)
from repro.experiments.harness import ExperimentTable
from repro.nlq.candidates import CandidateGenerator
from repro.sqldb.database import Database
from repro.stats import mean_ci
from repro.users.baseline import DropdownBaselineUser, DropdownTask
from repro.users.model import ReaderParameters
from repro.users.ratings import SimulatedRater
from repro.users.simulator import SimulatedUser
from repro.users.study import UserStudy, calibrate_cost_model


def figure3_perception_time(workers_per_task: int = 20,
                            seed: int = 0) -> dict[str, ExperimentTable]:
    """Figure 3: average perception time per visualization feature."""
    study = UserStudy(ReaderParameters(), workers_per_task=workers_per_task,
                      seed=seed)
    sweeps = study.run_all()
    tables: dict[str, ExperimentTable] = {}
    for key, sweep in sweeps.items():
        table = ExperimentTable(
            title=f"Figure 3 ({sweep.feature}): avg time vs level",
            columns=(sweep.feature, "mean_ms", "ci95_ms", "n"))
        for level in sweep.levels():
            stats = sweep.mean_time(level)
            table.add_row(level, stats.mean, stats.half_width, stats.n)
        tables[key] = table
    return tables


def table1_correlations(workers_per_task: int = 20,
                        seed: int = 0) -> ExperimentTable:
    """Table 1: Pearson correlation analysis of the four features."""
    study = UserStudy(ReaderParameters(), workers_per_task=workers_per_task,
                      seed=seed)
    sweeps = study.run_all()
    table = ExperimentTable(
        title="Table 1: Pearson correlation (feature vs time)",
        columns=("feature", "r_squared", "p_value", "significant@0.05"))
    order = ["bar_position", "plot_position", "red_bars", "num_plots"]
    for key in order:
        result = sweeps[key].correlation()
        table.add_row(sweeps[key].feature, result.r_squared,
                      result.p_value, result.p_value < 0.05)
    model = calibrate_cost_model(sweeps)
    table.add_note(f"calibrated c_B={model.bar_cost:.0f} ms, "
                   f"c_P={model.plot_cost:.0f} ms")
    return table


def figure12_muve_vs_baseline(database: Database, table_names: list[str],
                              users: int = 10, queries_per_user: int = 10,
                              seed: int = 0) -> ExperimentTable:
    """Figure 12: disambiguation time, MUVE multiplot vs dropdown baseline.

    For each specified query, the MUVE side plans a multiplot over the
    candidate distribution and a simulated reader finds the correct bar;
    the baseline side resolves every ambiguous element through a dropdown
    of the phonetically likely alternatives, then reads the single result.
    """
    table = ExperimentTable(
        title="Figure 12: avg disambiguation time, MUVE vs baseline",
        columns=("dataset", "muve_ms", "muve_ci", "baseline_ms",
                 "baseline_ci"))
    rng = np.random.default_rng(seed)
    for table_name in table_names:
        workload = WorkloadGenerator(database.table(table_name),
                                     seed=seed + 1)
        generator = CandidateGenerator(database, table_name)
        muve_times: list[float] = []
        baseline_times: list[float] = []
        for user_index in range(users):
            reader = SimulatedUser(ReaderParameters(),
                                   seed=seed + 100 * user_index)
            baseline = DropdownBaselineUser(ReaderParameters(),
                                            seed=seed + 100 * user_index)
            for _ in range(queries_per_user):
                target = workload.random_query(exact_predicates=1)
                candidates = generator.candidates(target, 12)
                problem = MultiplotSelectionProblem(
                    tuple(candidates),
                    geometry=ScreenGeometry(width_pixels=1500, num_rows=2))
                multiplot = GreedySolver().solve(problem).multiplot
                outcome = reader.disambiguate(multiplot, target)
                muve_times.append(outcome.milliseconds)
                # Baseline: one dropdown per replaceable element; the
                # correct entry's rank follows the candidate ranking.
                tasks = []
                for element in target.elements():
                    position = int(rng.integers(0, 3))
                    tasks.append(DropdownTask(num_options=12,
                                              correct_position=position))
                baseline_times.append(baseline.disambiguate(tasks))
        muve_stats = mean_ci(muve_times)
        baseline_stats = mean_ci(baseline_times)
        table.add_row(table_name, muve_stats.mean, muve_stats.half_width,
                      baseline_stats.mean, baseline_stats.half_width)
    return table


def figure13_method_ratings(database: Database,
                            dataset_labels: dict[str, str],
                            raters: int = 10,
                            seed: int = 0) -> ExperimentTable:
    """Figure 13: latency/clarity ratings per processing method.

    ``dataset_labels`` maps table names to display labels (the paper uses
    one small and one large dataset).
    """
    table = ExperimentTable(
        title="Figure 13: avg user rating (1-10) per method",
        columns=("dataset", "method", "latency", "latency_ci",
                 "clarity", "clarity_ci"))
    methods = {
        "default": lambda: DefaultProcessing(),
        "inc-plot": lambda: IncrementalPlotting(),
        "app-5%": lambda: ApproximateProcessing(fraction=0.05),
        "app-d": lambda: ApproximateProcessing(fraction=None,
                                               target_seconds=0.3),
    }
    for table_name, label in dataset_labels.items():
        workload = WorkloadGenerator(database.table(table_name),
                                     seed=seed + 2)
        generator = CandidateGenerator(database, table_name)
        target = workload.random_query(exact_predicates=1)
        candidates = generator.candidates(target, 20)
        problem = MultiplotSelectionProblem(
            tuple(candidates),
            geometry=ScreenGeometry(width_pixels=1500, num_rows=2))
        multiplot = GreedySolver().solve(problem).multiplot
        executor = MuveExecutor(database)
        method_updates = {"ilp-inc": executor.run_incremental_ilp(
            problem, total_budget=1.0)}
        for name, factory in methods.items():
            method_updates[name] = executor.run(multiplot, factory())
        for name, updates in method_updates.items():
            latency_scores = []
            clarity_scores = []
            for rater_index in range(raters):
                rater = SimulatedRater(seed=seed + 31 * rater_index)
                latency_scores.append(rater.rate_latency(updates))
                clarity_scores.append(rater.rate_clarity(updates))
            latency_stats = mean_ci(latency_scores)
            clarity_stats = mean_ci(clarity_scores)
            table.add_row(label, name, latency_stats.mean,
                          latency_stats.half_width, clarity_stats.mean,
                          clarity_stats.half_width)
    return table
