"""Experiment harnesses reproducing every table and figure of the paper.

Each module implements one group of experiments from Section 9 as plain
functions returning structured records, so the same logic drives the
benchmark suite (``benchmarks/``), the examples, and ad-hoc exploration:

* :mod:`repro.experiments.studies` — Figure 3 / Table 1 (user model),
  Figure 12 (MUVE vs dropdown baseline), Figure 13 (method ratings).
* :mod:`repro.experiments.solvers` — Figure 6 (greedy vs ILP sweeps).
* :mod:`repro.experiments.processing` — Figure 7 (query merging),
  Figure 8 (processing-cost-bounded ILP).
* :mod:`repro.experiments.scaling` — Figures 9-11 (presentation methods
  vs data size: interactivity ratio, approximation error, F/T-time).
* :mod:`repro.experiments.harness` — result records and table printing.
"""

from repro.experiments.harness import ExperimentTable
from repro.experiments.runner import run_all_experiments

__all__ = ["ExperimentTable", "run_all_experiments"]
