"""One-call regeneration of every experiment (the non-pytest path).

``pytest benchmarks/ --benchmark-only`` is the canonical way to reproduce
the paper's tables and figures (it also asserts their qualitative shape);
:func:`run_all_experiments` offers the same regeneration as a library
call — for notebooks, scripts, or environments without pytest-benchmark.
"""

from __future__ import annotations

from typing import Callable

from repro.datasets import (
    make_ads_table,
    make_dob_table,
    make_nyc311_table,
)
from repro.experiments.harness import ExperimentTable
from repro.experiments.processing import (
    figure7_query_merging,
    figure8_processing_bound,
)
from repro.experiments.scaling import (
    figure9_interactivity,
    figure10_initial_error,
    figure11_ftime_ttime,
    run_scaling_experiment,
)
from repro.experiments.solvers import figure6_solver_sweep
from repro.experiments.studies import (
    figure3_perception_time,
    figure12_muve_vs_baseline,
    figure13_method_ratings,
    table1_correlations,
)
from repro.sqldb.database import Database


def run_all_experiments(output_dir: str | None = None,
                        scale: float = 1.0,
                        seed: int = 0,
                        progress: Callable[[str], None] | None = None,
                        ) -> dict[str, ExperimentTable]:
    """Regenerate every table/figure; returns them keyed by name.

    ``scale`` multiplies workload sizes (0.25 gives a quick smoke pass,
    1.0 matches the benchmark suite).  With ``output_dir`` set, each
    table is also written there as text.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")

    def emit(message: str) -> None:
        if progress is not None:
            progress(message)

    def scaled(value: int, minimum: int = 2) -> int:
        return max(minimum, int(round(value * scale)))

    results: dict[str, ExperimentTable] = {}

    emit("figure 3 / table 1: user study")
    for key, table in figure3_perception_time(
            workers_per_task=scaled(20, 4), seed=seed).items():
        results[f"fig3_{key}"] = table
    results["table1"] = table1_correlations(
        workers_per_task=scaled(20, 4), seed=seed)

    emit("figure 6: solver comparison")
    nyc = Database(seed=seed)
    nyc.register_table(make_nyc311_table(num_rows=scaled(20_000, 2000),
                                         seed=7))
    for parameter in ("candidates", "rows", "pixels"):
        results[f"fig6_{parameter}"] = figure6_solver_sweep(
            nyc, "nyc311", parameter=parameter,
            num_queries=scaled(8, 2), seed=seed)

    emit("figure 7: query merging")
    dob = Database(seed=seed, io_millis_per_page=0.02)
    dob.register_table(make_dob_table(num_rows=scaled(50_000, 5000),
                                      seed=11))
    results["fig7"] = figure7_query_merging(
        dob, "dob", num_queries=scaled(10, 2),
        num_candidates=50, seed=seed)

    emit("figure 8: processing-cost bound")
    results["fig8"] = figure8_processing_bound(
        nyc, "nyc311", num_queries=scaled(6, 2), seed=seed)

    emit("figures 9-11: scaling")
    runs = run_scaling_experiment(
        fractions=(0.01, 0.1, 0.5, 1.0),
        full_rows=scaled(200_000, 20_000),
        num_queries=scaled(4, 2), seed=seed)
    results["fig9"] = figure9_interactivity(runs)
    results["fig10"] = figure10_initial_error(runs)
    results["fig11"] = figure11_ftime_ttime(runs)

    emit("figures 12-13: user studies")
    multi = Database(seed=seed)
    multi.register_table(make_ads_table(num_rows=scaled(10_000, 1000),
                                        seed=2))
    multi.register_table(make_dob_table(num_rows=scaled(10_000, 1000),
                                        seed=3))
    results["fig12"] = figure12_muve_vs_baseline(
        multi, ["ads", "dob"], users=scaled(10, 2),
        queries_per_user=scaled(10, 2), seed=seed)
    rating_db = Database(seed=seed, io_millis_per_page=0.02)
    rating_db.register_table(make_nyc311_table(
        num_rows=scaled(5000, 1000), seed=7))
    from repro.datasets import make_flights_table
    rating_db.register_table(make_flights_table(
        num_rows=scaled(200_000, 20_000), seed=3))
    results["fig13"] = figure13_method_ratings(
        rating_db, {"nyc311": "small (311)",
                    "flights": "large (flights)"},
        raters=scaled(10, 3), seed=seed)

    if output_dir is not None:
        for name, table in results.items():
            table.save(output_dir, name)
    return results
