"""Figure 6: greedy vs ILP across candidates / rows / resolutions.

The paper generates random aggregation queries, retrieves phonetically
similar candidates, and plans multiplots while sweeping one parameter at a
time (defaults: one row, 20 candidates, phone resolution, 1 s timeout),
reporting optimization time, timeout ratio, and the cost delta between the
two solvers' solutions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.greedy import GreedySolver
from repro.core.ilp import IlpSolver
from repro.core.model import ScreenGeometry
from repro.core.problem import MultiplotSelectionProblem
from repro.datasets.workload import WorkloadGenerator
from repro.errors import SolverError
from repro.experiments.harness import ExperimentTable
from repro.nlq.candidates import CandidateGenerator
from repro.sqldb.database import Database
from repro.stats import mean_ci

DEFAULT_CANDIDATES = 20
DEFAULT_ROWS = 1
DEFAULT_PIXELS = 1125  # iPhone-class screen, the paper's default
DEFAULT_TIMEOUT = 1.0


@dataclass(frozen=True)
class SolverComparison:
    """Per-instance measurements for both solvers."""

    greedy_seconds: float
    greedy_cost: float
    ilp_seconds: float
    ilp_cost: float
    ilp_timed_out: bool


def _compare_on_instance(problem: MultiplotSelectionProblem,
                         timeout: float) -> SolverComparison:
    greedy = GreedySolver().solve(problem)
    try:
        ilp = IlpSolver(timeout_seconds=timeout).solve(problem)
        ilp_cost = ilp.expected_cost
        ilp_seconds = ilp.elapsed_seconds
        timed_out = ilp.timed_out
    except SolverError:
        # No incumbent within the timeout: fall back to the empty
        # multiplot's cost, matching "timeout without solution".
        from repro.core.model import Multiplot
        ilp_cost = problem.evaluate(
            Multiplot.empty(problem.geometry.num_rows))
        ilp_seconds = timeout
        timed_out = True
    return SolverComparison(
        greedy_seconds=greedy.elapsed_seconds,
        greedy_cost=greedy.expected_cost,
        ilp_seconds=ilp_seconds,
        ilp_cost=ilp_cost,
        ilp_timed_out=timed_out,
    )


def _instances(database: Database, table_name: str, num_queries: int,
               num_candidates: int, seed: int):
    workload = WorkloadGenerator(database.table(table_name), seed=seed)
    generator = CandidateGenerator(database, table_name)
    for _ in range(num_queries):
        target = workload.random_query(max_predicates=5)
        yield tuple(generator.candidates(target, num_candidates))


def figure6_solver_sweep(database: Database, table_name: str = "nyc311",
                         parameter: str = "candidates",
                         num_queries: int = 10,
                         timeout: float = DEFAULT_TIMEOUT,
                         seed: int = 0) -> ExperimentTable:
    """One panel of Figure 6; ``parameter`` selects the swept dimension:
    ``"candidates"``, ``"rows"`` or ``"pixels"``."""
    sweeps = {
        "candidates": [5, 10, 20, 35, 50],
        "rows": [1, 2, 3],
        "pixels": [414, 768, 1125, 1920],
    }
    if parameter not in sweeps:
        raise ValueError(f"unknown sweep parameter {parameter!r}")
    table = ExperimentTable(
        title=(f"Figure 6 ({parameter} sweep, {table_name}): "
               "greedy vs ILP"),
        columns=(parameter, "greedy_ms", "ilp_ms", "ilp_timeout_ratio",
                 "greedy_cost", "ilp_cost", "cost_delta"))
    for level in sweeps[parameter]:
        num_candidates = level if parameter == "candidates" \
            else DEFAULT_CANDIDATES
        rows = level if parameter == "rows" else DEFAULT_ROWS
        pixels = level if parameter == "pixels" else DEFAULT_PIXELS
        geometry = ScreenGeometry(width_pixels=pixels, num_rows=rows)
        comparisons = []
        for candidates in _instances(database, table_name, num_queries,
                                     num_candidates, seed):
            problem = MultiplotSelectionProblem(candidates,
                                                geometry=geometry)
            comparisons.append(_compare_on_instance(problem, timeout))
        greedy_ms = mean_ci([c.greedy_seconds * 1000
                             for c in comparisons]).mean
        ilp_ms = mean_ci([c.ilp_seconds * 1000 for c in comparisons]).mean
        timeout_ratio = (sum(1 for c in comparisons if c.ilp_timed_out)
                         / len(comparisons))
        greedy_cost = mean_ci([c.greedy_cost for c in comparisons]).mean
        ilp_cost = mean_ci([c.ilp_cost for c in comparisons]).mean
        table.add_row(level, greedy_ms, ilp_ms, timeout_ratio,
                      greedy_cost, ilp_cost, greedy_cost - ilp_cost)
    table.add_note(f"{num_queries} random queries per level, "
                   f"timeout {timeout:.1f}s")
    return table
