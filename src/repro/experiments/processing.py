"""Figures 7 and 8: query merging and processing-cost-aware planning."""

from __future__ import annotations

import time

from repro.core.greedy import GreedySolver
from repro.core.ilp import IlpSolver, ProcessingGroup
from repro.core.model import ScreenGeometry
from repro.core.problem import MultiplotSelectionProblem
from repro.datasets.workload import WorkloadGenerator
from repro.errors import SolverError
from repro.execution.merging import plan_execution
from repro.experiments.harness import ExperimentTable
from repro.nlq.candidates import CandidateGenerator, CandidateQuery
from repro.sqldb.database import Database
from repro.stats import mean_ci


def figure7_query_merging(database: Database, table_name: str = "dob",
                          num_queries: int = 10,
                          num_candidates: int = 50,
                          seed: int = 0) -> ExperimentTable:
    """Figure 7: executing candidate sets merged vs separately.

    The paper's microbenchmark: 10 random queries, the 50 phonetically
    most similar candidates each, executed once separately and once
    merged; we report measured wall-clock times and the optimizer's cost
    estimates.
    """
    workload = WorkloadGenerator(database.table(table_name), seed=seed)
    # The paper's microbenchmark takes the 50 phonetically most similar
    # queries, i.e. single-element variations of the target; allowing
    # multi-element variations would scatter candidates across templates.
    generator = CandidateGenerator(database, table_name,
                                   k=num_candidates, max_simultaneous=1)
    merged_times: list[float] = []
    separate_times: list[float] = []
    merged_costs: list[float] = []
    separate_costs: list[float] = []
    for _ in range(num_queries):
        target = workload.random_query(max_predicates=3)
        candidates = generator.candidates(target, num_candidates)
        queries = [c.query for c in candidates]

        merged_plan = plan_execution(database, queries, merge=True)
        start = time.perf_counter()
        merged_plan.run(database)
        merged_times.append(time.perf_counter() - start)
        merged_costs.append(merged_plan.estimated_cost)

        separate_plan = plan_execution(database, queries, merge=False)
        start = time.perf_counter()
        separate_plan.run(database)
        separate_times.append(time.perf_counter() - start)
        separate_costs.append(separate_plan.estimated_cost)

    table = ExperimentTable(
        title=f"Figure 7: merged vs separate execution ({table_name})",
        columns=("mode", "wall_ms", "wall_ci", "optimizer_cost"))
    merged_stats = mean_ci([t * 1000 for t in merged_times])
    separate_stats = mean_ci([t * 1000 for t in separate_times])
    table.add_row("merged", merged_stats.mean, merged_stats.half_width,
                  mean_ci(merged_costs).mean)
    table.add_row("separate", separate_stats.mean,
                  separate_stats.half_width,
                  mean_ci(separate_costs).mean)
    table.add_note(f"{num_queries} queries x {num_candidates} candidates")
    return table


def _candidate_groups(database: Database,
                      candidates: tuple[CandidateQuery, ...],
                      ) -> list[ProcessingGroup]:
    """Processing groups from the merge planner's grouping (Section 8.1)."""
    from repro.execution.merging import candidate_processing_groups
    return candidate_processing_groups(database, candidates)


def figure8_processing_bound(database: Database,
                             table_name: str = "nyc311",
                             num_queries: int = 10,
                             budget_factors: tuple[float, ...] = (
                                 0.25, 0.5, 1.0, 2.0),
                             pixels: int = 900,
                             seed: int = 0) -> ExperimentTable:
    """Figure 8: disambiguation vs processing cost under a cost bound.

    ``ILP(P-Cost)`` bounds total processing cost by ``factor * unbounded``
    for several factors; ``ILP(D-Cost)`` and the greedy planner ignore
    processing cost.  Reported: average disambiguation cost (model units),
    average processing cost (optimizer units), average planning time.
    """
    workload = WorkloadGenerator(database.table(table_name), seed=seed)
    generator = CandidateGenerator(database, table_name)
    geometry = ScreenGeometry(width_pixels=pixels, num_rows=1)

    instances = []
    for _ in range(num_queries):
        target = workload.random_query(max_predicates=3)
        candidates = tuple(generator.candidates(target, 20))
        groups = _candidate_groups(database, candidates)
        instances.append((candidates, groups))

    table = ExperimentTable(
        title=f"Figure 8: cost-bounded planning ({table_name})",
        columns=("method", "disambiguation_cost", "processing_cost",
                 "planning_ms"))

    def record(method: str, results: list[tuple[float, float, float]]):
        table.add_row(method,
                      mean_ci([r[0] for r in results]).mean,
                      mean_ci([r[1] for r in results]).mean,
                      mean_ci([r[2] * 1000 for r in results]).mean)

    # Unbounded baselines.
    greedy_rows = []
    dcost_rows = []
    unbounded_processing: list[float] = []
    for candidates, groups in instances:
        problem = MultiplotSelectionProblem(candidates, geometry=geometry)
        greedy = GreedySolver().solve(problem)
        greedy_cost = _processing_cost_of(database, greedy.multiplot)
        greedy_rows.append((greedy.expected_cost, greedy_cost,
                            greedy.elapsed_seconds))
        solver = IlpSolver(timeout_seconds=5.0)
        solution = solver.solve(problem, processing_groups=groups)
        dcost_rows.append((solution.expected_cost,
                           solution.processing_cost,
                           solution.elapsed_seconds))
        unbounded_processing.append(solution.processing_cost)
    record("greedy", greedy_rows)
    record("ILP(D-Cost)", dcost_rows)

    for factor in budget_factors:
        rows = []
        for (candidates, groups), unbounded in zip(instances,
                                                   unbounded_processing):
            budget = max(unbounded * factor,
                         min((g.cost for g in groups), default=0.0))
            problem = MultiplotSelectionProblem(
                candidates, geometry=geometry,
                processing_costs=tuple(0.0 for _ in candidates),
                processing_budget=budget)
            solver = IlpSolver(timeout_seconds=5.0)
            try:
                solution = solver.solve(problem, processing_groups=groups)
            except SolverError:
                continue
            rows.append((solution.expected_cost,
                         solution.processing_cost,
                         solution.elapsed_seconds))
        if rows:
            record(f"ILP(P-Cost x{factor:g})", rows)
    return table


def _processing_cost_of(database: Database, multiplot) -> float:
    """Optimizer cost of executing a multiplot's queries (merged)."""
    queries = list(multiplot.displayed_queries())
    if not queries:
        return 0.0
    return plan_execution(database, queries, merge=True).estimated_cost
