"""Figures 9-11: presentation methods vs data size.

One shared runner executes every (data size, method, query) combination
once, recording:

* **F-Time** — seconds until the correct query's result first becomes
  visible, at least approximately (planning time included);
* **T-Time** — seconds until the final visualization is complete;
* **initial relative error** — for approximate methods, the mean relative
  deviation of the first visualization's bar values from the final ones.

Three table builders then derive Figure 9 (ratio of runs whose F-Time
exceeds an interactivity threshold), Figure 10 (initial error), and
Figure 11 (F-Time vs T-Time).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.greedy import GreedySolver
from repro.core.ilp import IlpSolver
from repro.core.model import ScreenGeometry
from repro.core.problem import MultiplotSelectionProblem
from repro.datasets.generators import make_flights_table
from repro.datasets.workload import WorkloadGenerator
from repro.errors import SolverError
from repro.execution.engine import MuveExecutor, VisualizationUpdate
from repro.execution.progressive import (
    ApproximateProcessing,
    DefaultProcessing,
    IncrementalPlotting,
)
from repro.experiments.harness import ExperimentTable
from repro.nlq.candidates import CandidateGenerator
from repro.sqldb.database import Database
from repro.sqldb.query import AggregateQuery
from repro.stats import mean_ci

METHOD_NAMES = ("greedy", "ilp", "ilp-inc", "inc-plot", "app-1%",
                "app-5%", "app-d")


@dataclass(frozen=True)
class MethodRun:
    """One (data size, method, query) measurement."""

    method: str
    data_fraction: float
    f_time: float
    t_time: float
    initial_relative_error: float | None
    correct_shown: bool


def _updates_error(updates: list[VisualizationUpdate]) -> float | None:
    """Mean relative error of the first update's values vs the final's."""
    if len(updates) < 2:
        return None
    first, last = updates[0], updates[-1]
    errors = []
    for plot in last.multiplot.plots():
        for bar in plot.bars:
            exact = bar.value
            approx = first.value_of(bar.query)
            if exact is None or approx is None or exact == 0:
                continue
            errors.append(abs(approx - exact) / abs(exact))
    if not errors:
        return None
    return sum(errors) / len(errors)


def _f_and_t_time(updates: list[VisualizationUpdate],
                  planning_seconds: float,
                  correct: AggregateQuery) -> tuple[float, float, bool]:
    t_time = planning_seconds + (updates[-1].elapsed_seconds
                                 if updates else 0.0)
    for update in updates:
        if update.shows_result_for(correct):
            return planning_seconds + update.elapsed_seconds, t_time, True
    return t_time, t_time, False


def run_method(database: Database, method: str,
               problem: MultiplotSelectionProblem,
               correct: AggregateQuery,
               data_fraction: float,
               ilp_timeout: float = 1.0) -> MethodRun:
    """Execute one method end to end (planning plus processing)."""
    executor = MuveExecutor(database)

    if method == "ilp-inc":
        updates = executor.run_incremental_ilp(
            problem, total_budget=ilp_timeout,
            initial_timeout=0.0625, growth_factor=2.0)
        # run_incremental_ilp folds optimisation time into update times.
        f_time, t_time, shown = _f_and_t_time(updates, 0.0, correct)
        error = _updates_error(updates)
        return MethodRun(method, data_fraction, f_time, t_time, error,
                         shown)

    start = time.perf_counter()
    if method == "ilp":
        try:
            multiplot = IlpSolver(
                timeout_seconds=ilp_timeout).solve(problem).multiplot
        except SolverError:
            multiplot = GreedySolver().solve(problem).multiplot
    else:
        multiplot = GreedySolver().solve(problem).multiplot
    planning_seconds = time.perf_counter() - start

    strategies = {
        "greedy": lambda: DefaultProcessing(),
        "ilp": lambda: DefaultProcessing(),
        "inc-plot": lambda: IncrementalPlotting(),
        "app-1%": lambda: ApproximateProcessing(fraction=0.01),
        "app-5%": lambda: ApproximateProcessing(fraction=0.05),
        "app-d": lambda: ApproximateProcessing(fraction=None,
                                               target_seconds=0.05),
    }
    if method not in strategies:
        raise ValueError(f"unknown method {method!r}")
    updates = executor.run(multiplot, strategies[method]())
    f_time, t_time, shown = _f_and_t_time(updates, planning_seconds,
                                          correct)
    return MethodRun(method, data_fraction, f_time, t_time,
                     _updates_error(updates), shown)


def run_scaling_experiment(fractions: tuple[float, ...] = (
                               0.01, 0.1, 0.5, 1.0),
                           full_rows: int = 200_000,
                           num_queries: int = 5,
                           num_candidates: int = 20,
                           methods: tuple[str, ...] = METHOD_NAMES,
                           ilp_timeout: float = 1.0,
                           io_millis_per_page: float = 0.02,
                           seed: int = 0) -> list[MethodRun]:
    """All runs behind Figures 9-11, on scaled flight-delay samples.

    ``io_millis_per_page`` simulates the paper's disk-resident 10 GB
    setting, where scan time grows with data size and approximate
    processing pays off by reading fewer pages.
    """
    runs: list[MethodRun] = []
    for fraction in fractions:
        rows = max(1000, int(full_rows * fraction))
        database = Database(seed=seed,
                            io_millis_per_page=io_millis_per_page)
        database.register_table(
            make_flights_table(num_rows=rows, seed=3, name="flights"))
        workload = WorkloadGenerator(database.table("flights"),
                                     seed=seed + 1)
        generator = CandidateGenerator(database, "flights")
        for _ in range(num_queries):
            target = workload.random_query(exact_predicates=1)
            candidates = tuple(generator.candidates(target,
                                                    num_candidates))
            problem = MultiplotSelectionProblem(
                candidates,
                geometry=ScreenGeometry(width_pixels=1125, num_rows=1))
            for method in methods:
                runs.append(run_method(database, method, problem, target,
                                       fraction, ilp_timeout))
    return runs


def figure9_interactivity(runs: list[MethodRun],
                          thresholds: tuple[float, ...] = (
                              0.1, 0.25, 0.5)) -> ExperimentTable:
    """Figure 9: ratio of runs whose F-Time exceeds each threshold."""
    table = ExperimentTable(
        title="Figure 9: ratio of non-interactive runs (F-Time > theta)",
        columns=("data_fraction", "method")
        + tuple(f"theta={t:g}s" for t in thresholds))
    fractions = sorted({run.data_fraction for run in runs})
    methods = sorted({run.method for run in runs},
                     key=METHOD_NAMES.index)
    for fraction in fractions:
        for method in methods:
            sample = [r for r in runs
                      if r.data_fraction == fraction
                      and r.method == method]
            ratios = tuple(
                sum(1 for r in sample if r.f_time > theta) / len(sample)
                for theta in thresholds)
            table.add_row(fraction, method, *ratios)
    return table


def figure10_initial_error(runs: list[MethodRun]) -> ExperimentTable:
    """Figure 10: relative error of the first approximate multiplot."""
    table = ExperimentTable(
        title="Figure 10: initial relative error of approximate methods",
        columns=("data_fraction", "method", "relative_error"))
    fractions = sorted({run.data_fraction for run in runs})
    for fraction in fractions:
        for method in ("app-1%", "app-5%", "app-d"):
            errors = [r.initial_relative_error for r in runs
                      if r.data_fraction == fraction
                      and r.method == method
                      and r.initial_relative_error is not None]
            if errors:
                table.add_row(fraction, method, mean_ci(errors).mean)
    return table


def figure11_ftime_ttime(runs: list[MethodRun]) -> ExperimentTable:
    """Figure 11: F-Time vs T-Time per method and data size."""
    table = ExperimentTable(
        title="Figure 11: time to first correct result vs total time",
        columns=("data_fraction", "method", "f_time_ms", "t_time_ms"))
    fractions = sorted({run.data_fraction for run in runs})
    methods = sorted({run.method for run in runs},
                     key=METHOD_NAMES.index)
    for fraction in fractions:
        for method in methods:
            sample = [r for r in runs
                      if r.data_fraction == fraction
                      and r.method == method]
            table.add_row(fraction, method,
                          mean_ci([r.f_time * 1000
                                   for r in sample]).mean,
                          mean_ci([r.t_time * 1000
                                   for r in sample]).mean)
    return table
