"""Thread-safe caching for the concurrent serving path.

The package provides three layers:

* :class:`LruCache` — a generic thread-safe LRU with single-flight
  computation and hit/miss/eviction counters.
* :func:`normalize_sql` — lexical SQL canonicalisation for cache keys.
* :class:`QueryResultCache` / :class:`PlanCache` — the two domain caches
  wired into :class:`~repro.execution.engine.MuveExecutor` and
  :class:`~repro.core.planner.VisualizationPlanner`.
* :class:`PhoneticProbeCache` — exact top-k phonetic rankings keyed by
  ``(index uid, index version, probe, k, include_self)``, wired into
  :class:`~repro.nlq.candidates.CandidateGenerator`.
"""

from repro.caching.caches import (
    PlanCache,
    QueryResultCache,
    register_cache_metrics,
)
from repro.caching.lru import CacheStats, LruCache
from repro.caching.phonetic import (
    PhoneticProbeCache,
    phonetic_probe_cache,
    reset_phonetic_probe_cache,
)
from repro.caching.selection import SelectionCache
from repro.caching.sql import normalize_sql

__all__ = [
    "CacheStats",
    "LruCache",
    "PhoneticProbeCache",
    "PlanCache",
    "QueryResultCache",
    "SelectionCache",
    "normalize_sql",
    "phonetic_probe_cache",
    "register_cache_metrics",
    "reset_phonetic_probe_cache",
]
