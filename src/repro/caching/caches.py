"""The two serving-path caches: query results and planner outputs.

Both wrap :class:`~repro.caching.lru.LruCache` with a domain-specific key
function and share its thread-safety and single-flight guarantees.  Cached
values are immutable objects (:class:`~repro.sqldb.database.QueryResult`,
:class:`~repro.core.planner.PlannerResult`), so handing the same instance
to many threads is safe by construction.

Invalidation story: the demo serves read-only tables, so neither cache
expires entries on its own.  Anything that mutates a table
(``insert_rows``/``drop_table``) must call :meth:`QueryResultCache.clear`
and :meth:`PlanCache.clear` — :class:`~repro.muve.Muve` exposes
``invalidate_caches()`` for exactly that.
"""

from __future__ import annotations

from dataclasses import astuple
from typing import TYPE_CHECKING, Callable, Hashable, Sequence

from repro.caching.lru import CacheStats, LruCache
from repro.caching.sql import normalize_sql

if TYPE_CHECKING:  # pragma: no cover - import cycle guards for type hints
    from repro.core.ilp import ProcessingGroup
    from repro.core.problem import MultiplotSelectionProblem
    from repro.observability import MetricsRegistry
    from repro.sqldb.database import QueryResult


def register_cache_metrics(registry: "MetricsRegistry", cache_name: str,
                           cache: "QueryResultCache | PlanCache") -> None:
    """Expose a cache's hit/miss/eviction counters as live gauges.

    The gauges pull from ``cache.stats`` at read time, so the registry
    snapshot always reflects the current counters without the cache
    pushing updates.  Re-registering the same ``cache_name`` (e.g. after
    rebuilding a pipeline) replaces the callbacks.
    """
    registry.register_gauge("cache_hits",
                            lambda: float(cache.stats.hits),
                            cache=cache_name)
    registry.register_gauge("cache_misses",
                            lambda: float(cache.stats.misses),
                            cache=cache_name)
    registry.register_gauge("cache_evictions",
                            lambda: float(cache.stats.evictions),
                            cache=cache_name)
    registry.register_gauge("cache_size",
                            lambda: float(cache.stats.size),
                            cache=cache_name)
    registry.register_gauge("cache_hit_rate",
                            lambda: cache.stats.hit_rate,
                            cache=cache_name)


class QueryResultCache:
    """Query results keyed on normalised SQL text.

    Wired into the execution layer: every merged-group statement the
    executor would run is first looked up here, so a repeated question (or
    a different question whose candidates merge into the same group SQL)
    skips the engine entirely.
    """

    def __init__(self, capacity: int = 512) -> None:
        self._cache = LruCache(capacity)

    def get_or_execute(self, sql: str,
                       execute: Callable[[str], "QueryResult"],
                       ) -> "QueryResult":
        """The cached result of *sql*, running *execute* once on a miss."""
        return self._cache.get_or_compute(normalize_sql(sql),
                                          lambda: execute(sql))

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    def clear(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)


class PlanCache:
    """Planner outputs keyed on (candidate set, geometry, budget).

    Multiplot planning is deterministic given the problem (both solvers
    break ties lexicographically), so the planner result for a repeated
    candidate distribution can be reused wholesale.  The key captures
    everything that feeds the solvers: each candidate's SQL and
    probability, the screen geometry, the user cost model, the optional
    processing costs/budget, and the processing groups of the
    processing-aware extension.
    """

    def __init__(self, capacity: int = 256) -> None:
        self._cache = LruCache(capacity)

    @staticmethod
    def problem_key(problem: "MultiplotSelectionProblem",
                    processing_groups:
                    "Sequence[ProcessingGroup] | None" = None,
                    ) -> Hashable:
        """A hashable identity of a planning problem instance."""
        candidates = tuple(
            (candidate.query.to_sql(), round(candidate.probability, 12))
            for candidate in problem.candidates)
        groups_key = None
        if processing_groups is not None:
            groups_key = tuple(sorted(
                (group.cost, tuple(sorted(group.candidate_indices)))
                for group in processing_groups))
        return (candidates,
                astuple(problem.geometry),
                astuple(problem.cost_model),
                problem.processing_costs,
                problem.processing_budget,
                groups_key)

    def get_or_plan(self, key: Hashable,
                    plan: Callable[[], object]) -> object:
        """The cached planner result for *key*, planning once on a miss."""
        return self._cache.get_or_compute(key, plan)

    def get(self, key: Hashable) -> object | None:
        """The cached result for *key*, or ``None`` — no computation.

        Used by the planner when a request runs under a deadline or an
        active fault plan: a *hit* is always safe to serve (only proven
        undegraded plans are ever stored), but the miss path must decide
        about storage itself, after seeing whether planning degraded.
        """
        return self._cache.get(key)

    def put(self, key: Hashable, result: object) -> None:
        """Store a planner result the caller has proven undegraded."""
        self._cache.put(key, result)

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    def clear(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)
