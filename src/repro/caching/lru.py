"""A thread-safe LRU cache with single-flight computation.

The cache is the concurrency workhorse of the serving path: many threads
answer questions against one shared :class:`~repro.muve.Muve`, and most of
their work (query execution, multiplot planning) is deterministic given its
inputs.  :class:`LruCache` lets those threads share results safely:

* All bookkeeping (the ordered map, hit/miss/eviction counters) is guarded
  by one internal lock; ``get``/``put`` never block on user code.
* :meth:`get_or_compute` adds *single-flight* semantics: when several
  threads miss on the same key at once, exactly one computes the value
  while the others wait on it — a stampede of identical questions costs
  one execution, not N.
* ``capacity=0`` disables storage entirely (every lookup is a miss) while
  keeping the API intact, so callers never need ``if cache is not None``
  pyramids around a feature flag.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of cache effectiveness counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from cache (0.0 when unused)."""
        total = self.requests
        return self.hits / total if total else 0.0


class LruCache:
    """Least-recently-used cache safe for concurrent readers and writers.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently *used* entry is
        evicted first.  A capacity of 0 turns the cache into a pass-through
        (nothing is stored, every request is a miss).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._inflight: dict[Hashable, threading.Event] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def keys(self) -> Iterator[Hashable]:
        """Current keys, least recently used first (snapshot)."""
        with self._lock:
            return iter(list(self._data.keys()))

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              evictions=self._evictions,
                              size=len(self._data),
                              capacity=self._capacity)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._data.clear()

    # ------------------------------------------------------------------

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value for *key* (refreshing recency), else *default*."""
        with self._lock:
            if key in self._data:
                self._hits += 1
                self._data.move_to_end(key)
                return self._data[key]
            self._misses += 1
            return default

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/overwrite *key*, evicting the LRU entry when full."""
        with self._lock:
            self._store(key, value)

    def get_or_compute(self, key: Hashable,
                       compute: Callable[[], Any]) -> Any:
        """The cached value for *key*, computing (once) on a miss.

        Concurrent callers missing on the same key coalesce: one thread
        runs *compute* (outside the cache lock), the rest block until the
        value lands and then read it.  If the leader raises, one waiter is
        promoted to retry — an exception never wedges the key.
        """
        while True:
            with self._lock:
                if key in self._data:
                    self._hits += 1
                    self._data.move_to_end(key)
                    return self._data[key]
                event = self._inflight.get(key)
                if event is None:
                    self._inflight[key] = threading.Event()
                    self._misses += 1
                    break
            event.wait()
            # Re-check: the leader either stored the value (hit on the next
            # pass), failed (we become the new leader), or the capacity is
            # 0 (we recompute ourselves).
        try:
            value = compute()
        except BaseException:
            with self._lock:
                pending = self._inflight.pop(key, None)
            if pending is not None:
                pending.set()
            raise
        with self._lock:
            self._store(key, value)
            pending = self._inflight.pop(key, None)
        if pending is not None:
            pending.set()
        return value

    # ------------------------------------------------------------------

    def _store(self, key: Hashable, value: Any) -> None:
        """Insert under the held lock, applying the capacity bound."""
        if self._capacity == 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self._capacity:
            self._data.popitem(last=False)
            self._evictions += 1
