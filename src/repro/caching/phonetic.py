"""Per-probe memoisation of exact phonetic top-k rankings.

Candidate generation asks :class:`~repro.phonetics.index.PhoneticIndex`
for the same handful of probes over and over (every request repeats the
schema element names, and users repeat constants), so rankings are worth
caching across requests.  The cache key is::

    (index.uid, index.version, probe, k, include_self)

``index.version`` is bumped by every mutation of the underlying index, so
a vocabulary change implicitly invalidates every entry for that index —
no explicit invalidation call needed (stale entries simply age out of the
LRU).  ``index.uid`` is process-unique and never reused, so entries can
never be confused between indexes, even after garbage collection.

Values are immutable tuples of :class:`~repro.phonetics.index.ScoredTerm`
and the underlying :class:`~repro.caching.lru.LruCache` provides
single-flight semantics: concurrent requests probing the same term run
one retrieval, not one each.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.caching.lru import CacheStats, LruCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.phonetics.index import PhoneticIndex, ScoredTerm

__all__ = ["PhoneticProbeCache", "phonetic_probe_cache",
           "reset_phonetic_probe_cache"]


class PhoneticProbeCache:
    """LRU over exact top-k phonetic rankings, keyed by index version."""

    def __init__(self, capacity: int = 4096) -> None:
        self._cache = LruCache(capacity)

    def most_similar(self, index: "PhoneticIndex", probe: str, k: int,
                     *, include_self: bool = True,
                     ) -> tuple["ScoredTerm", ...]:
        """The cached ranking of *probe* against *index* (single-flight).

        The version is read before the retrieval runs; a concurrent
        mutation therefore stores the fresher ranking under the older
        version key, which only errs towards fresher results.
        """
        key = (index.uid, index.version, probe, k, include_self)
        return self._cache.get_or_compute(
            key,
            lambda: tuple(index.most_similar(probe, k,
                                             include_self=include_self)))

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    def clear(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)


# ---------------------------------------------------------------------------
# Process-wide default instance
# ---------------------------------------------------------------------------

_default_lock = threading.Lock()
_default: PhoneticProbeCache | None = None


def phonetic_probe_cache() -> PhoneticProbeCache:
    """The process-wide probe cache shared by candidate generators."""
    global _default
    if _default is None:
        with _default_lock:
            if _default is None:
                _default = PhoneticProbeCache()
    return _default


def reset_phonetic_probe_cache() -> None:
    """Replace the process-wide cache with a fresh one (test isolation)."""
    global _default
    with _default_lock:
        _default = None
