"""SQL text normalisation for cache keys.

Two textual spellings of the same statement — different whitespace,
different keyword/identifier casing — must map to one cache entry, while
string literals (predicate constants like ``'Brooklyn'``) must keep their
exact case: ``borough = 'Brooklyn'`` and ``borough = 'brooklyn'`` are
different queries.

The normaliser is purely lexical (it never parses), so it is cheap enough
to run on every cache lookup and safe on any SQL dialect the engine
accepts.
"""

from __future__ import annotations


def normalize_sql(sql: str) -> str:
    """A canonical form of *sql* for use as a cache key.

    Outside single-quoted literals: whitespace runs collapse to one space
    and all characters are lower-cased.  Inside literals every character
    (including the ``''`` escape) is preserved verbatim.  A trailing
    semicolon and surrounding whitespace are dropped.
    """
    out: list[str] = []
    in_literal = False
    pending_space = False
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if in_literal:
            out.append(ch)
            if ch == "'":
                if i + 1 < n and sql[i + 1] == "'":  # escaped quote
                    out.append("'")
                    i += 2
                    continue
                in_literal = False
            i += 1
            continue
        if ch == "'":
            if pending_space and out:
                out.append(" ")
            pending_space = False
            in_literal = True
            out.append(ch)
            i += 1
            continue
        if ch.isspace():
            pending_space = True
            i += 1
            continue
        if pending_space and out:
            out.append(" ")
        pending_space = False
        out.append(ch.lower())
        i += 1
    normalized = "".join(out)
    while normalized.endswith(";"):
        normalized = normalized[:-1].rstrip()
    return normalized
