"""Cross-request cache of predicate selections (masks and postings).

Leaf-predicate selections — boolean masks from full scans, int64
position arrays from secondary-index probes — are pure functions of
table data, so one request's work can serve every later request until
the data changes.  :class:`SelectionCache` is the byte-budgeted store
:class:`~repro.sqldb.database.Database` keeps for the batch executor;
the database drops the whole cache on any DDL or data mutation.

Eviction is clear-all: predicate working sets are small (one entry per
distinct candidate leaf), so the budget only trips when the workload
churns through predicates — at which point nothing in the cache is
worth ranking.  Plain-dict operations keep the read path lock-free
under the GIL; mutations serialise on a small lock so the byte
accounting and the monotonic :attr:`~SelectionCache.version` counter
stay consistent under the worker pool's concurrent stores.  A racing
double-store is harmless (both stores are the same pure value).
"""

from __future__ import annotations

import threading
from typing import Hashable

import numpy as np

__all__ = ["SelectionCache"]


class SelectionCache:
    """A byte-budgeted ``key -> numpy selection`` store.

    Stored arrays are shared across threads and requests — callers must
    treat them as immutable.  A budget of 0 disables storage entirely
    (lookups simply always miss).

    ``version`` increments under the mutation lock on every state
    change (store, budget eviction, clear) and never decreases — a
    reader that captures the version before and after a lookup can
    detect concurrent mutation, and the concurrency suite asserts
    monotonicity under a multi-thread hammer.
    """

    def __init__(self, budget_bytes: int) -> None:
        self._budget = budget_bytes
        self._lock = threading.Lock()
        self._entries: dict[Hashable, np.ndarray] = {}
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._clears = 0
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic mutation counter (reads are lock-free; the int is
        replaced atomically under the GIL)."""
        return self._version

    def get(self, key: Hashable) -> np.ndarray | None:
        # Lock-free: dict reads are atomic under the GIL, and values are
        # only ever whole immutable arrays — a concurrent clear swaps
        # the dict object, it never mutates entries in place, so a read
        # observes either the complete array or a miss, never a torn
        # value.
        entry = self._entries.get(key)
        # Racing increments may drop a count; the stats are advisory.
        if entry is not None:
            self._hits += 1
        else:
            self._misses += 1
        return entry

    def store(self, key: Hashable, selection: np.ndarray) -> None:
        if self._budget <= 0:
            return
        with self._lock:
            if self._bytes + selection.nbytes > self._budget:
                self._entries = {}
                self._bytes = 0
                self._clears += 1
                self._version += 1
                if selection.nbytes > self._budget:
                    return
            # Replacing dicts on eviction (rather than .clear()) keeps
            # concurrent lock-free readers iterating a stable snapshot.
            previous = self._entries.get(key)
            self._entries[key] = selection
            self._bytes += selection.nbytes
            if previous is not None:
                self._bytes -= previous.nbytes
            self._version += 1

    def clear(self) -> None:
        with self._lock:
            self._entries = {}
            self._bytes = 0
            self._version += 1

    def stats(self) -> dict[str, float]:
        return {
            "entries": float(len(self._entries)),
            "bytes": float(self._bytes),
            "budget_bytes": float(self._budget),
            "hits": float(self._hits),
            "misses": float(self._misses),
            "clears": float(self._clears),
            "version": float(self._version),
        }
