"""Cross-request cache of predicate selections (masks and postings).

Leaf-predicate selections — boolean masks from full scans, int64
position arrays from secondary-index probes — are pure functions of
table data, so one request's work can serve every later request until
the data changes.  :class:`SelectionCache` is the byte-budgeted store
:class:`~repro.sqldb.database.Database` keeps for the batch executor;
the database drops the whole cache on any DDL or data mutation.

Eviction is clear-all: predicate working sets are small (one entry per
distinct candidate leaf), so the budget only trips when the workload
churns through predicates — at which point nothing in the cache is
worth ranking.  Plain-dict operations keep the read path lock-free
under the GIL; a racing double-store is harmless (both stores are the
same pure value).
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

__all__ = ["SelectionCache"]


class SelectionCache:
    """A byte-budgeted ``key -> numpy selection`` store.

    Stored arrays are shared across threads and requests — callers must
    treat them as immutable.  A budget of 0 disables storage entirely
    (lookups simply always miss).
    """

    def __init__(self, budget_bytes: int) -> None:
        self._budget = budget_bytes
        self._entries: dict[Hashable, np.ndarray] = {}
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._clears = 0

    def get(self, key: Hashable) -> np.ndarray | None:
        entry = self._entries.get(key)
        # Racing increments may drop a count; the stats are advisory.
        if entry is not None:
            self._hits += 1
        else:
            self._misses += 1
        return entry

    def store(self, key: Hashable, selection: np.ndarray) -> None:
        if self._budget <= 0:
            return
        if self._bytes + selection.nbytes > self._budget:
            self._entries = {}
            self._bytes = 0
            self._clears += 1
            if selection.nbytes > self._budget:
                return
        self._entries[key] = selection
        self._bytes += selection.nbytes

    def clear(self) -> None:
        self._entries = {}
        self._bytes = 0

    def stats(self) -> dict[str, float]:
        return {
            "entries": float(len(self._entries)),
            "bytes": float(self._bytes),
            "budget_bytes": float(self._budget),
            "hits": float(self._hits),
            "misses": float(self._misses),
            "clears": float(self._clears),
        }
