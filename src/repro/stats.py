"""Small statistics helpers used by studies and benchmarks.

The paper reports arithmetic averages with 95% confidence bounds and Pearson
correlation analyses (Table 1).  These helpers wrap scipy so that every
experiment formats its statistics the same way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as _sps


@dataclass(frozen=True)
class MeanCI:
    """An arithmetic mean together with a symmetric confidence half-width."""

    mean: float
    half_width: float
    n: int
    confidence: float = 0.95

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:  # pragma: no cover - formatting convenience
        return f"{self.mean:.3f} ± {self.half_width:.3f} (n={self.n})"


def mean_ci(values: Sequence[float], confidence: float = 0.95) -> MeanCI:
    """Arithmetic mean of *values* with a t-distribution confidence bound.

    Mirrors the paper's "95% confidence bounds for all plots showing
    arithmetic averages".  A single observation yields a zero half-width.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("mean_ci requires at least one value")
    mean = float(data.mean())
    if data.size == 1:
        return MeanCI(mean=mean, half_width=0.0, n=1, confidence=confidence)
    sem = float(data.std(ddof=1)) / math.sqrt(data.size)
    t_crit = float(_sps.t.ppf(0.5 + confidence / 2.0, df=data.size - 1))
    return MeanCI(mean=mean, half_width=t_crit * sem, n=int(data.size),
                  confidence=confidence)


@dataclass(frozen=True)
class PearsonResult:
    """Pearson correlation result in the shape of the paper's Table 1."""

    r: float
    p_value: float
    n: int

    @property
    def r_squared(self) -> float:
        return self.r * self.r


def pearson(xs: Sequence[float], ys: Sequence[float]) -> PearsonResult:
    """Pearson correlation coefficient with two-sided p-value."""
    x = np.asarray(list(xs), dtype=float)
    y = np.asarray(list(ys), dtype=float)
    if x.size != y.size:
        raise ValueError("pearson requires equally long sequences")
    if x.size < 3:
        raise ValueError("pearson requires at least three observations")
    result = _sps.pearsonr(x, y)
    return PearsonResult(r=float(result.statistic),
                         p_value=float(result.pvalue), n=int(x.size))


def seeded_rng(seed: int | None) -> np.random.Generator:
    """A numpy Generator; every stochastic component takes one of these."""
    return np.random.default_rng(seed)
