"""Numpy kernels over fixed-width phonetic code arrays.

The pruned top-k search in :mod:`repro.phonetics.index` separates the
per-probe work into two phases with very different cost profiles:

* a **bound pass** over *every* distinct Double Metaphone code — one
  cheap, admissible upper bound per code, vectorized here so that a
  100k-code vocabulary costs a handful of numpy passes instead of 100k
  Python-level Jaro-Winkler evaluations; and
* an **exact pass** over the shortlist of codes whose bound survives the
  current top-k threshold — :func:`batch_jaro_winkler` mirrors the scalar
  :func:`repro.phonetics.distance.jaro_winkler` control flow operation
  for operation, so the vectorized scores are **bit-identical** to the
  scalar ones (the differential tests in ``tests/phonetics`` pin this).

Codes are packed by :class:`PackedCodes`: each row is one distinct code
as ``uint8`` character ids (0 is padding, real characters start at 1,
assigned in first-seen order).  The Double Metaphone alphabet is 15
symbols (``0AFHJKLMNPRSTX`` plus the space that joins multi-word
encodings), so per-code character counts form a thin ``[n, alphabet]``
matrix and the multiset bound below is a single ``np.minimum`` + sum.
Queries take an immutable :class:`CodeArrays` snapshot, so concurrent
readers never observe a half-rebuilt pack.

Bound derivation (see DESIGN.md, "Sublinear phonetic retrieval"): with
``m`` Jaro matches, ``t`` transpositions, lengths ``l1``/``l2``::

    jaro = (m/l1 + m/l2 + (m - t)/m) / 3   <=   (m_ub/l1 + m_ub/l2 + 1) / 3

where ``m_ub = sum_c min(count_probe(c), count_code(c))`` bounds the
matches by the character-multiset intersection (matching never uses a
character more often than it occurs in either string) and ``t >= 0``.
``m_ub`` is also at most ``min(l1, l2)``, so the bound never exceeds 1.
The Winkler boost ``jw = j + p * s * (1 - j)`` is increasing in both the
Jaro value ``j`` (``d/dj = 1 - p*s > 0`` for ``p <= 4, s <= 0.25``) and
the shared-prefix length ``p``, so substituting the Jaro upper bound and
the *exact* shared prefix keeps the bound admissible.  A small epsilon
absorbs float rounding differences between the bound and exact paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phonetics.distance import jaro_winkler

__all__ = [
    "CodeArrays",
    "PackedCodes",
    "batch_jaro_winkler",
    "jaro_winkler_upper_bounds",
    "scalar_reference",
]

#: Safety margin added to upper bounds: the bound and the exact score are
#: computed by different float expressions, so without the epsilon a bound
#: could round one ulp below an exact score and wrongly prune it.
BOUND_EPSILON = 1e-9


@dataclass(frozen=True)
class CodeArrays:
    """An immutable snapshot of a :class:`PackedCodes` pack.

    ``codes[i]`` is the string form of row ``i`` of ``matrix``; arrays are
    shared, never mutated in place (rebuilds allocate fresh ones), so a
    snapshot taken under the index lock stays consistent without it.
    """

    codes: tuple[str, ...]
    rows: dict[str, int]    # code -> row position in the arrays below
    matrix: np.ndarray      # [n, width] uint8 character ids, 0-padded
    lengths: np.ndarray     # [n] int64 code lengths
    counts: np.ndarray      # [n, alphabet] int16 per-character counts
    char_ids: dict[str, int]

    def __len__(self) -> int:
        return len(self.codes)

    def encode(self, code: str) -> np.ndarray:
        """*code* as character ids from this snapshot's table.

        Characters the pack has never seen get fresh ids past the
        alphabet — they cannot match any packed character, which is
        exactly the semantics of a probe-only character.
        """
        table = self.char_ids
        next_id = len(table) + 1
        extras: dict[str, int] = {}
        ids = np.empty(len(code), dtype=np.int64)
        for position, char in enumerate(code):
            char_id = table.get(char)
            if char_id is None:
                char_id = extras.get(char)
                if char_id is None:
                    char_id = extras[char] = next_id
                    next_id += 1
            ids[position] = char_id
        return ids


class PackedCodes:
    """Append-only builder of :class:`CodeArrays` snapshots.

    Not thread-safe on its own: the owning index serialises
    :meth:`append`/:meth:`snapshot` under its lock.  Rebuilds are lazy
    (appends buffer until the next snapshot) and allocate new arrays, so
    previously returned snapshots remain valid.
    """

    def __init__(self) -> None:
        self._codes: list[str] = []
        self._char_ids: dict[str, int] = {}
        self._pending: list[str] = []
        self._snapshot: CodeArrays | None = None

    def __len__(self) -> int:
        return len(self._codes) + len(self._pending)

    def append(self, code: str) -> None:
        """Buffer one distinct non-empty code for the next snapshot."""
        self._pending.append(code)

    def snapshot(self) -> CodeArrays:
        """The current pack in matrix form (rebuilding if stale)."""
        if self._snapshot is not None and not self._pending:
            return self._snapshot
        pending, self._pending = self._pending, []
        for code in pending:
            for char in code:
                if char not in self._char_ids:
                    self._char_ids[char] = len(self._char_ids) + 1
        old = self._snapshot
        old_count = len(self._codes)
        width = max((len(code) for code in pending), default=0)
        if old is not None:
            width = max(width, old.matrix.shape[1])
        alphabet = len(self._char_ids) + 1
        total = old_count + len(pending)
        matrix = np.zeros((total, width), dtype=np.uint8)
        counts = np.zeros((total, alphabet), dtype=np.int16)
        lengths = np.zeros(total, dtype=np.int64)
        if old is not None and old_count:
            matrix[:old_count, :old.matrix.shape[1]] = old.matrix
            counts[:old_count, :old.counts.shape[1]] = old.counts
            lengths[:old_count] = old.lengths
        for offset, code in enumerate(pending):
            row = old_count + offset
            ids = [self._char_ids[char] for char in code]
            matrix[row, :len(ids)] = ids
            lengths[row] = len(ids)
            for char_id in ids:
                counts[row, char_id] += 1
        self._codes.extend(pending)
        self._snapshot = CodeArrays(
            codes=tuple(self._codes),
            rows={code: row for row, code in enumerate(self._codes)},
            matrix=matrix, lengths=lengths, counts=counts,
            char_ids=dict(self._char_ids))
        return self._snapshot


def _probe_counts(probe_ids: np.ndarray, alphabet: int) -> np.ndarray:
    counts = np.zeros(alphabet, dtype=np.int16)
    ids, occurrences = np.unique(probe_ids, return_counts=True)
    in_table = ids < alphabet
    counts[ids[in_table]] = occurrences[in_table]
    return counts


def _shared_prefix(probe_ids: np.ndarray, matrix: np.ndarray,
                   max_prefix: int) -> np.ndarray:
    """Exact common-prefix length (capped) of the probe vs every row."""
    depth = min(len(probe_ids), matrix.shape[1], max_prefix)
    if depth == 0:
        return np.zeros(matrix.shape[0], dtype=np.int64)
    # Count leading matches: the prefix ends at the first mismatch.
    running = matrix[:, 0] == probe_ids[0]
    prefix = running.astype(np.int64)
    for position in range(1, depth):
        running = running & (matrix[:, position] == probe_ids[position])
        prefix += running
    return prefix


def jaro_winkler_upper_bounds(probe_ids: np.ndarray, arrays: CodeArrays,
                              prefix_scale: float = 0.1,
                              max_prefix: int = 4) -> np.ndarray:
    """Admissible per-code upper bounds on ``jaro_winkler(probe, code)``.

    Never below the exact similarity (see the module docstring for the
    derivation); cheap enough to evaluate for every distinct code on
    every probe.
    """
    if len(arrays) == 0:
        return np.zeros(0, dtype=np.float64)
    probe_len = len(probe_ids)
    if probe_len == 0:
        # jaro("", code) is 0.0 for the non-empty codes packed here.
        return np.full(len(arrays), BOUND_EPSILON, dtype=np.float64)
    shared = np.minimum(arrays.counts,
                        _probe_counts(probe_ids, arrays.counts.shape[1]))
    m_ub = shared.sum(axis=1, dtype=np.float64)
    jaro_ub = (m_ub / probe_len + m_ub / arrays.lengths + 1.0) / 3.0
    jaro_ub[m_ub == 0] = 0.0
    prefix = _shared_prefix(probe_ids, arrays.matrix, max_prefix)
    bounds = jaro_ub + prefix * prefix_scale * (1.0 - jaro_ub)
    return bounds + BOUND_EPSILON


def batch_jaro_winkler(probe_ids: np.ndarray, arrays: CodeArrays,
                       rows: np.ndarray,
                       prefix_scale: float = 0.1,
                       max_prefix: int = 4) -> np.ndarray:
    """Exact Jaro-Winkler of the probe against the selected packed rows.

    Mirrors :func:`repro.phonetics.distance.jaro_winkler` step for step —
    the greedy windowed matching (probe characters in the first role),
    the transposition count, and the exact float expression shapes — so
    results are bit-identical to the scalar implementation.
    """
    sub = arrays.matrix[rows]
    sub_lengths = arrays.lengths[rows]
    n, width = sub.shape
    probe_len = len(probe_ids)
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    if probe_len == 0:
        # Scalar semantics: equal strings (both empty) score 1.0, an
        # empty side against a non-empty one scores 0.0.
        return np.where(sub_lengths == 0, 1.0, 0.0)

    # Greedy windowed matching, row-parallel; the window depends on the
    # row through max(len1, len2).  For each probe position the scalar
    # code takes the *first* unmatched in-window equal character, which
    # vectorizes as argmax over a boolean candidate slab (argmax returns
    # the first True per row).
    window = np.maximum(sub_lengths, probe_len) // 2 - 1
    np.maximum(window, 0, out=window)
    matched1 = np.zeros((n, probe_len), dtype=bool)
    matched2 = np.zeros((n, width), dtype=bool)
    positions = np.arange(width)
    in_length = positions < sub_lengths[:, None]
    row_ids = np.arange(n)
    for i in range(probe_len):
        candidates = ((sub == probe_ids[i])
                      & (np.abs(positions - i) <= window[:, None])
                      & in_length & ~matched2)
        hit = candidates.any(axis=1)
        first = candidates.argmax(axis=1)
        matched2[row_ids[hit], first[hit]] = True
        matched1[hit, i] = True

    m = matched1.sum(axis=1)

    # Transpositions: compact each side's matched characters in order,
    # then count positional mismatches (ids shifted by one so padding
    # zeros cannot collide with character id 0-padding).
    rank1 = np.cumsum(matched1, axis=1) - 1
    rank2 = np.cumsum(matched2, axis=1) - 1
    seq1 = np.zeros((n, probe_len), dtype=np.int64)
    seq2 = np.zeros((n, width), dtype=np.int64)
    row_index, char_index = np.nonzero(matched1)
    seq1[row_index, rank1[row_index, char_index]] = \
        probe_ids[char_index] + 1
    row_index, char_index = np.nonzero(matched2)
    seq2[row_index, rank2[row_index, char_index]] = \
        sub[row_index, char_index].astype(np.int64) + 1
    depth = min(probe_len, width)
    mismatch = ((seq1[:, :depth] != seq2[:, :depth])
                & (seq1[:, :depth] != 0))
    transpositions = mismatch.sum(axis=1) // 2

    m_float = m.astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        jaro = (m_float / probe_len + m_float / sub_lengths
                + (m_float - transpositions) / m_float) / 3.0
    jaro[m == 0] = 0.0
    # Identical strings short-circuit to exactly 1.0 in the scalar code
    # (the formula also lands on 1.0, but keep the paths aligned).
    if width >= probe_len:
        identical = ((sub_lengths == probe_len)
                     & (sub[:, :probe_len] == probe_ids).all(axis=1))
        jaro[identical] = 1.0

    prefix = _shared_prefix(probe_ids, sub, max_prefix)
    return jaro + prefix * prefix_scale * (1.0 - jaro)


def scalar_reference(probe_code: str, codes: list[str]) -> np.ndarray:
    """The scalar Jaro-Winkler over *codes* (test/benchmark helper)."""
    return np.array([jaro_winkler(probe_code, code) for code in codes],
                    dtype=np.float64)
