"""Phonetic encodings and string similarity (the Lucene substitute).

The paper maps query/database elements to a phonetic representation with the
Double Metaphone algorithm and measures similarity of the encodings with the
Jaro-Winkler distance; Apache Lucene provides the "k most phonetically
similar entries" lookup.  This package reimplements all three pieces:

* :func:`double_metaphone` — the Philips (2000) Double Metaphone codec,
  returning a primary and alternate code.
* :mod:`repro.phonetics.distance` — Jaro, Jaro-Winkler, Levenshtein and
  Damerau-Levenshtein similarities.
* :class:`PhoneticIndex` — an in-memory index over a vocabulary supporting
  ``most_similar(term, k)``, used wherever the paper calls Lucene.

Soundex and NYSIIS codecs are included for comparison/ablation purposes.
"""

from repro.phonetics.distance import (
    damerau_levenshtein,
    jaro,
    jaro_winkler,
    levenshtein,
)
from repro.phonetics.index import PhoneticIndex, ScoredTerm
from repro.phonetics.metaphone import double_metaphone
from repro.phonetics.nysiis import nysiis
from repro.phonetics.soundex import soundex

__all__ = [
    "PhoneticIndex",
    "ScoredTerm",
    "damerau_levenshtein",
    "double_metaphone",
    "jaro",
    "jaro_winkler",
    "levenshtein",
    "nysiis",
    "soundex",
]
