"""American Soundex codec (included for phonetic-codec ablations)."""

from __future__ import annotations

_SOUNDEX_CODES = {
    **dict.fromkeys("BFPV", "1"),
    **dict.fromkeys("CGJKQSXZ", "2"),
    **dict.fromkeys("DT", "3"),
    "L": "4",
    **dict.fromkeys("MN", "5"),
    "R": "6",
}

_HW = frozenset("HW")
_VOWELS = frozenset("AEIOUY")


def soundex(value: str, length: int = 4) -> str:
    """Classic Soundex: first letter plus digit codes, zero-padded.

    Follows the U.S. National Archives rules: letters separated by H or W
    with the same code count once; vowels reset the run.
    """
    word = "".join(ch for ch in value.upper() if "A" <= ch <= "Z")
    if not word:
        return ""
    first = word[0]
    encoded = [first]
    previous_code = _SOUNDEX_CODES.get(first, "")
    for ch in word[1:]:
        if ch in _HW:
            continue
        code = _SOUNDEX_CODES.get(ch, "")
        if code and code != previous_code:
            encoded.append(code)
            if len(encoded) == length:
                break
        previous_code = code if ch not in _VOWELS else ""
    return "".join(encoded).ljust(length, "0")[:length]
