"""Phonetic vocabulary index — the Apache Lucene substitute.

The paper uses Lucene to find, for every schema element or constant in a
query, the *k* entries of the database vocabulary that sound most similar.
:class:`PhoneticIndex` provides that contract: terms are encoded with Double
Metaphone and ranked by Jaro-Winkler similarity of the encodings (falling
back to a small surface-form component to break ties between terms with
identical codes), exactly the similarity notion of Section 3 of the paper.

``most_similar`` is **exact, pruned top-k retrieval** rather than an
exhaustive scan:

* The vocabulary is grouped by distinct Double Metaphone code, so each
  code's phonetic similarity is computed once and fans out to every term
  sharing it (categorical vocabularies are dense in homophones — that is
  the whole premise of the paper).
* A vectorized bound pass (:mod:`repro.phonetics.vectorized`) assigns every
  distinct code an admissible Jaro-Winkler upper bound from character
  multiset intersection, lengths, and the exact shared prefix.
* Codes are visited best-bound-first; the search stops as soon as the best
  remaining bound (plus the maximum surface-component contribution) cannot
  beat the current k-th best exact score.  Because the bounds are
  admissible, the result is **bit-identical** to the exhaustive ranking —
  same terms, same scores, same tie order — which the differential tests
  in ``tests/phonetics`` pin against the private :meth:`_exhaustive_scan`
  oracle.

The pruned path can be disabled with ``MUVE_PHONETIC_PRUNING=off`` (or the
CLI's ``--no-phonetic-pruning``) as a debugging escape hatch; results are
identical either way, only slower.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.flags import env_switch
from repro.observability import trace_span
from repro.phonetics.distance import jaro_winkler
from repro.phonetics.metaphone import metaphone_codes
from repro.phonetics.vectorized import (
    PackedCodes,
    batch_jaro_winkler,
    jaro_winkler_upper_bounds,
)

__all__ = [
    "PhoneticIndex",
    "ScoredTerm",
    "phonetic_similarity",
    "phonetic_stats",
    "pruning_enabled",
    "register_phonetic_metrics",
    "reset_phonetic_stats",
    "set_pruning_enabled",
]

#: Vocabularies at or below this size are answered by the plain scan: the
#: packing/bound machinery cannot beat a few dozen scalar comparisons.
_SMALL_VOCABULARY = 64

#: Shortlists at or above this size are scored with the vectorized batch
#: kernel instead of the scalar loop (identical results either way).
_VECTORIZE_THRESHOLD = 64

#: Minimum number of best-bound codes walked scalar-first to establish the
#: top-k cutoff before the vectorized shortlist pass.
_SEED_CODES = 48

#: Codes batch-scored per phase-2 round; between rounds the remaining pool
#: is re-filtered against the tightened cutoff.
_PHASE2_CHUNK = 1024


# ---------------------------------------------------------------------------
# Pruning flag (escape hatch)
# ---------------------------------------------------------------------------

_pruning = env_switch("MUVE_PHONETIC_PRUNING")


def pruning_enabled() -> bool:
    """Whether ``most_similar`` uses the pruned best-first search."""
    return _pruning


def set_pruning_enabled(enabled: bool) -> None:
    """Globally toggle pruned retrieval (``--no-phonetic-pruning``)."""
    global _pruning
    _pruning = bool(enabled)


# ---------------------------------------------------------------------------
# Process-wide counters (surfaced via /api/stats and the metrics registry)
# ---------------------------------------------------------------------------


class _PhoneticStats:
    """Thread-safe counters describing retrieval effectiveness."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with getattr(self, "_lock", threading.Lock()):
            self.probes = 0
            self.exhaustive_probes = 0
            self.codes_total = 0
            self.codes_scored = 0
            self.terms_scored = 0
            self.terms_total = 0
            self.probe_millis = 0.0

    def record(self, *, exhaustive: bool, codes_total: int,
               codes_scored: int, terms_scored: int, terms_total: int,
               elapsed_ms: float) -> None:
        with self._lock:
            self.probes += 1
            if exhaustive:
                self.exhaustive_probes += 1
            self.codes_total += codes_total
            self.codes_scored += codes_scored
            self.terms_scored += terms_scored
            self.terms_total += terms_total
            self.probe_millis += elapsed_ms

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            scanned_fraction = (self.terms_scored / self.terms_total
                                if self.terms_total else 0.0)
            return {
                "probes": self.probes,
                "exhaustive_probes": self.exhaustive_probes,
                "codes_total": self.codes_total,
                "codes_scored": self.codes_scored,
                "terms_scored": self.terms_scored,
                "terms_total": self.terms_total,
                "scanned_fraction": round(scanned_fraction, 6),
                "probe_millis": round(self.probe_millis, 3),
            }


_STATS = _PhoneticStats()


def phonetic_stats() -> dict[str, float]:
    """Process-wide retrieval counters (``/api/stats`` payload)."""
    return _STATS.snapshot()


def reset_phonetic_stats() -> None:
    """Zero the process-wide counters (test isolation)."""
    _STATS.reset()


def register_phonetic_metrics(registry) -> None:
    """Expose the retrieval counters as callback gauges on *registry*."""
    for name in ("probes", "exhaustive_probes", "codes_scored",
                 "terms_scored", "terms_total", "scanned_fraction"):
        registry.register_gauge(
            "phonetic_" + name,
            lambda key=name: float(_STATS.snapshot()[key]))


# ---------------------------------------------------------------------------
# Similarity
# ---------------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class ScoredTerm:
    """A vocabulary term with its phonetic similarity to the probe term.

    Ordering is by (score, term) so that ``sorted(..., reverse=True)`` yields
    a deterministic best-first ranking.
    """

    score: float
    term: str


def phonetic_similarity(a: str, b: str, *, surface_weight: float = 0.1,
                        codec: Callable[[str], tuple[str, ...]] | None = None,
                        ) -> float:
    """Similarity in [0, 1] between two strings.

    The dominant component is the maximum Jaro-Winkler similarity over the
    cross product of the two terms' Double Metaphone codes (primary and
    alternate), as described in the paper.  A small ``surface_weight``
    fraction of plain Jaro-Winkler on the lowercase surface forms breaks
    ties between phonetically identical terms ("flour" vs "flower").
    """
    if not 0.0 <= surface_weight < 1.0:
        raise ValueError("surface_weight must be within [0, 1)")
    encode = codec or metaphone_codes
    codes_a = [code for code in encode(a) if code]
    codes_b = [code for code in encode(b) if code]
    if codes_a and codes_b:
        phonetic = max(jaro_winkler(ca, cb)
                       for ca in codes_a for cb in codes_b)
    elif not codes_a and not codes_b:
        phonetic = 1.0
    else:
        phonetic = 0.0
    surface = jaro_winkler(a.lower(), b.lower())
    return (1.0 - surface_weight) * phonetic + surface_weight * surface


# ---------------------------------------------------------------------------
# The index
# ---------------------------------------------------------------------------

_uid_counter = itertools.count(1)


class PhoneticIndex:
    """In-memory index over a vocabulary with exact k-most-similar lookup.

    Safe to share across threads: mutation (:meth:`add`) and lazy pack
    rebuilds are serialised by an internal lock, queries operate on
    immutable array snapshots, and every mutation bumps :attr:`version`
    (cache keys over ``(probe, k, version)`` therefore never serve stale
    rankings — see :class:`repro.caching.PhoneticProbeCache`).
    """

    def __init__(self, terms: Iterable[str] = (), *,
                 surface_weight: float = 0.1) -> None:
        self._surface_weight = surface_weight
        self._codes: dict[str, tuple[str, ...]] = {}
        #: distinct non-empty code -> terms carrying it (append-only).
        self._groups: dict[str, list[str]] = {}
        #: terms whose encoding is empty (non-alphabetic values).
        self._codeless: list[str] = []
        self._packed = PackedCodes()
        self._lock = threading.Lock()
        self._version = 0
        self._uid = next(_uid_counter)
        self.add_all(terms)

    # -- introspection --------------------------------------------------

    @property
    def uid(self) -> int:
        """A process-unique identity (never reused, unlike ``id()``)."""
        return self._uid

    @property
    def version(self) -> int:
        """Bumped on every successful :meth:`add`; keys probe caches."""
        return self._version

    def __len__(self) -> int:
        return len(self._codes)

    def __contains__(self, term: str) -> bool:
        return term in self._codes

    def __iter__(self) -> Iterator[str]:
        return iter(list(self._codes))

    def codes(self, term: str) -> tuple[str, ...]:
        """The cached metaphone codes of an indexed term."""
        try:
            return self._codes[term]
        except KeyError:
            raise KeyError(f"term {term!r} is not in the index") from None

    def similarity(self, a: str, b: str) -> float:
        """Phonetic similarity between two arbitrary strings."""
        return phonetic_similarity(a, b, surface_weight=self._surface_weight)

    # -- mutation -------------------------------------------------------

    def add(self, term: str) -> None:
        """Insert *term* into the vocabulary (idempotent)."""
        if not isinstance(term, str):
            raise TypeError(f"index terms must be strings, got {term!r}")
        with self._lock:
            if term in self._codes:
                return
            codes = metaphone_codes(term)
            self._codes[term] = codes
            distinct = [code for code in dict.fromkeys(codes) if code]
            if not distinct:
                self._codeless.append(term)
            for code in distinct:
                group = self._groups.get(code)
                if group is None:
                    self._groups[code] = [term]
                    self._packed.append(code)
                else:
                    group.append(term)
            self._version += 1

    def add_all(self, terms: Iterable[str]) -> None:
        for term in terms:
            self.add(term)

    # -- retrieval ------------------------------------------------------

    def most_similar(self, probe: str, k: int = 20, *,
                     include_self: bool = True) -> list[ScoredTerm]:
        """The *k* vocabulary terms most phonetically similar to *probe*.

        Results are sorted best-first and deterministic (ties broken by the
        term's lexicographic order).  ``include_self=False`` drops an exact
        string match of the probe from the ranking, which is what candidate
        generation wants when proposing *alternatives* for a query element.

        Always exact: the pruned search provably returns the same ranking
        an exhaustive scan would (same terms, scores and tie order).
        """
        if k <= 0:
            raise ValueError("k must be positive")
        begin = time.perf_counter()
        probe_codes = tuple(code for code in metaphone_codes(probe) if code)
        vocabulary_size = len(self._codes)
        if (not _pruning or not probe_codes
                or vocabulary_size <= max(_SMALL_VOCABULARY, k)):
            ranked = self._exhaustive_scan(probe, k,
                                           include_self=include_self)
            _STATS.record(exhaustive=True,
                          codes_total=len(self._groups),
                          codes_scored=len(self._groups),
                          terms_scored=vocabulary_size,
                          terms_total=vocabulary_size,
                          elapsed_ms=(time.perf_counter() - begin) * 1e3)
            return ranked
        with trace_span("phonetics.most_similar") as span:
            ranked, codes_scored, terms_scored = self._pruned_scan(
                probe, probe_codes, k, include_self)
            elapsed_ms = (time.perf_counter() - begin) * 1000.0
            span.set_attribute("vocabulary", vocabulary_size)
            span.set_attribute("codes_scored", codes_scored)
            span.set_attribute("terms_scored", terms_scored)
            span.set_attribute("elapsed_ms", round(elapsed_ms, 4))
        _STATS.record(exhaustive=False, codes_total=len(self._groups),
                      codes_scored=codes_scored,
                      terms_scored=terms_scored,
                      terms_total=vocabulary_size, elapsed_ms=elapsed_ms)
        return ranked

    # ------------------------------------------------------------------

    def _exhaustive_scan(self, probe: str, k: int, *,
                         include_self: bool = True) -> list[ScoredTerm]:
        """Score every term — the O(vocabulary) oracle the pruned search
        is differential-tested against (and the fallback for tiny
        vocabularies, codeless probes, and ``--no-phonetic-pruning``)."""
        scored = []
        for term in list(self._codes):
            if not include_self and term == probe:
                continue
            scored.append(ScoredTerm(self.similarity(probe, term), term))
        scored.sort(key=lambda st: (-st.score, st.term))
        return scored[:k]

    def _pruned_scan(self, probe: str, probe_codes: tuple[str, ...],
                     k: int, include_self: bool,
                     ) -> tuple[list[ScoredTerm], int, int]:
        """Best-bound-first exact top-k (see the module docstring)."""
        with self._lock:
            arrays = self._packed.snapshot()
        weight = self._surface_weight
        phonetic_share = 1.0 - weight
        probe_ids = [arrays.encode(code) for code in probe_codes]
        bounds = jaro_winkler_upper_bounds(probe_ids[0], arrays)
        for ids in probe_ids[1:]:
            np.maximum(bounds, jaro_winkler_upper_bounds(ids, arrays),
                       out=bounds)

        surface_probe = probe.lower()
        #: per-row refinement of ``bounds``: overwritten with the exact
        #: score once a row has been batch-scored (still admissible —
        #: the exact value is its own tightest upper bound).
        upper_bounds = bounds.copy()
        #: rows whose ``upper_bounds`` entry is the exact score.
        exact_known = np.zeros(len(bounds), dtype=bool)
        #: exact max-over-probe-codes Jaro-Winkler per distinct code.
        code_scores: dict[str, float] = {}

        def code_score(code: str) -> float:
            score = code_scores.get(code)
            if score is None:
                row = arrays.rows.get(code)
                if row is not None and exact_known[row]:
                    score = float(upper_bounds[row])
                else:
                    score = max(jaro_winkler(pc, code)
                                for pc in probe_codes)
                code_scores[code] = score
            return score

        results: list[ScoredTerm] = []
        threshold: list[float] = []  # min-heap of the current top-k scores
        seen: set[str] = set()
        codes_scored = 0
        terms_scored = 0

        def score_terms(terms: list[str], phonetic_default: float | None,
                        ) -> None:
            nonlocal terms_scored
            for term in terms:
                if term in seen:
                    continue
                seen.add(term)
                if not include_self and term == probe:
                    continue
                filled = len(threshold) == k
                cutoff = threshold[0] if filled else 0.0
                if phonetic_default is None:
                    term_codes = [code for code in self._codes[term]
                                  if code]
                    if filled:
                        # Admissible per-term prefilter: exact scores
                        # where known, vectorized bounds otherwise, and
                        # the full surface component.  Strict <, so an
                        # exact tie is still scored (term-order ties).
                        upper = 0.0
                        for code in term_codes:
                            known = code_scores.get(code)
                            if known is None:
                                row = arrays.rows.get(code)
                                known = float(upper_bounds[row]) \
                                    if row is not None else 1.0
                            if known > upper:
                                upper = known
                        if phonetic_share * upper + weight < cutoff:
                            continue
                    phonetic = max(code_score(code)
                                   for code in term_codes)
                    if filled and (phonetic_share * phonetic + weight
                                   < cutoff):
                        continue
                else:
                    phonetic = phonetic_default
                surface = jaro_winkler(surface_probe, term.lower())
                # Mirrors phonetic_similarity()'s combining expression
                # exactly, so pruned scores are bit-identical.
                total = phonetic_share * phonetic + weight * surface
                terms_scored += 1
                results.append(ScoredTerm(total, term))
                if len(threshold) < k:
                    heapq.heappush(threshold, total)
                elif total > threshold[0]:
                    heapq.heapreplace(threshold, total)

        # Phase 1 — seed the cutoff: walk the globally best-bound codes
        # with scalar scoring.  Each code contributes at least one term
        # and each term carries at most two codes, so 2k + 2 rows are
        # guaranteed to fill the k-slot threshold (modulo include_self).
        count = len(bounds)
        seed_size = min(count, max(2 * k + 2, _SEED_CODES))
        if seed_size < count:
            part = np.argpartition(-bounds, seed_size - 1)[:seed_size]
        else:
            part = np.arange(count)
        seed = part[np.argsort(-bounds[part], kind="stable")]
        done = False
        for row in seed:
            # A term's total score is at most its best code bound plus
            # the full surface component; once that cannot beat the k-th
            # best exact score, no unseen term can either.  Strict <, so
            # equal-score lexicographic ties are never pruned.  The seed
            # holds the global best bounds in descending order, so
            # stopping here completes the whole search.
            if len(threshold) == k and (phonetic_share * bounds[row]
                                        + weight < threshold[0]):
                done = True
                break
            codes_scored += 1
            # phonetic_default=None: each member term takes the max over
            # *all* its codes (the alternate may score higher than the
            # code that surfaced the group).
            score_terms(self._groups[arrays.codes[row]], None)

        if not done:
            # Phase 2 — exact-score the codes whose bound can still beat
            # the cutoff, best-bound chunks first, re-filtering the pool
            # against the tightened cutoff between chunks (one chunk of
            # exact scores usually proves the rest of the pool hopeless
            # without ever batch-scoring it).  Every excluded code failed
            # an admissible filter at some point, and the cutoff only
            # grows, so exclusion is final; within a chunk, walking in
            # descending exact order means the first score below the
            # cutoff ends the chunk.
            walked = np.zeros(count, dtype=bool)
            walked[seed] = True
            pool = np.flatnonzero(~walked)
            while len(pool):
                if len(threshold) == k:
                    pool = pool[phonetic_share * bounds[pool] + weight
                                >= threshold[0]]
                    if not len(pool):
                        break
                take = min(len(pool), _PHASE2_CHUNK)
                if take < len(pool):
                    sel = np.argpartition(-bounds[pool], take - 1)[:take]
                    chunk = pool[sel]
                    keep = np.ones(len(pool), dtype=bool)
                    keep[sel] = False
                    pool = pool[keep]
                else:
                    chunk, pool = pool, pool[:0]
                if len(chunk) >= _VECTORIZE_THRESHOLD:
                    exact = batch_jaro_winkler(probe_ids[0], arrays,
                                               chunk)
                    for ids in probe_ids[1:]:
                        np.maximum(exact,
                                   batch_jaro_winkler(ids, arrays,
                                                      chunk),
                                   out=exact)
                else:
                    exact = np.array(
                        [max(jaro_winkler(pc, arrays.codes[row])
                             for pc in probe_codes)
                         for row in chunk], dtype=np.float64)
                upper_bounds[chunk] = exact
                exact_known[chunk] = True
                for position in np.argsort(-exact, kind="stable"):
                    if len(threshold) == k and (
                            phonetic_share * float(exact[position])
                            + weight < threshold[0]):
                        break
                    codes_scored += 1
                    code = arrays.codes[chunk[position]]
                    score_terms(self._groups[code], None)

        # Terms with no phonetic encoding score weight * surface at most;
        # <= keeps ties exact (a tying term can still win on term order).
        if len(threshold) < k or threshold[0] <= weight:
            score_terms(list(self._codeless), 0.0)

        results.sort(key=lambda st: (-st.score, st.term))
        return results[:k], codes_scored, terms_scored
