"""Phonetic vocabulary index — the Apache Lucene substitute.

The paper uses Lucene to find, for every schema element or constant in a
query, the *k* entries of the database vocabulary that sound most similar.
:class:`PhoneticIndex` provides that contract: terms are encoded with Double
Metaphone and ranked by Jaro-Winkler similarity of the encodings (falling
back to a small surface-form component to break ties between terms with
identical codes), exactly the similarity notion of Section 3 of the paper.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.phonetics.distance import jaro_winkler
from repro.phonetics.metaphone import metaphone_codes


@dataclass(frozen=True, order=True)
class ScoredTerm:
    """A vocabulary term with its phonetic similarity to the probe term.

    Ordering is by (score, term) so that ``sorted(..., reverse=True)`` yields
    a deterministic best-first ranking.
    """

    score: float
    term: str


def phonetic_similarity(a: str, b: str, *, surface_weight: float = 0.1,
                        codec: Callable[[str], tuple[str, ...]] | None = None,
                        ) -> float:
    """Similarity in [0, 1] between two strings.

    The dominant component is the maximum Jaro-Winkler similarity over the
    cross product of the two terms' Double Metaphone codes (primary and
    alternate), as described in the paper.  A small ``surface_weight``
    fraction of plain Jaro-Winkler on the lowercase surface forms breaks
    ties between phonetically identical terms ("flour" vs "flower").
    """
    if not 0.0 <= surface_weight < 1.0:
        raise ValueError("surface_weight must be within [0, 1)")
    encode = codec or metaphone_codes
    codes_a = [code for code in encode(a) if code]
    codes_b = [code for code in encode(b) if code]
    if codes_a and codes_b:
        phonetic = max(jaro_winkler(ca, cb)
                       for ca in codes_a for cb in codes_b)
    elif not codes_a and not codes_b:
        phonetic = 1.0
    else:
        phonetic = 0.0
    surface = jaro_winkler(a.lower(), b.lower())
    return (1.0 - surface_weight) * phonetic + surface_weight * surface


class PhoneticIndex:
    """In-memory index over a vocabulary with k-most-similar lookup.

    Terms are bucketed by the first character of their primary metaphone
    code; a probe first scores its own bucket(s) and widens to the full
    vocabulary only when the buckets cannot fill *k* results.  For the
    vocabulary sizes of the paper's datasets (column names plus distinct
    categorical values) exhaustive scoring is already fast, so the bucketing
    is an optimisation, not an approximation: :meth:`most_similar` always
    scores every term when ``exhaustive=True`` (the default).
    """

    def __init__(self, terms: Iterable[str] = (), *,
                 surface_weight: float = 0.1) -> None:
        self._surface_weight = surface_weight
        self._codes: dict[str, tuple[str, ...]] = {}
        self._buckets: dict[str, set[str]] = defaultdict(set)
        for term in terms:
            self.add(term)

    def __len__(self) -> int:
        return len(self._codes)

    def __contains__(self, term: str) -> bool:
        return term in self._codes

    def __iter__(self) -> Iterator[str]:
        return iter(self._codes)

    def add(self, term: str) -> None:
        """Insert *term* into the vocabulary (idempotent)."""
        if not isinstance(term, str):
            raise TypeError(f"index terms must be strings, got {term!r}")
        if term in self._codes:
            return
        codes = metaphone_codes(term)
        self._codes[term] = codes
        for code in codes:
            self._buckets[code[:1]].add(term)

    def add_all(self, terms: Iterable[str]) -> None:
        for term in terms:
            self.add(term)

    def codes(self, term: str) -> tuple[str, ...]:
        """The cached metaphone codes of an indexed term."""
        try:
            return self._codes[term]
        except KeyError:
            raise KeyError(f"term {term!r} is not in the index") from None

    def similarity(self, a: str, b: str) -> float:
        """Phonetic similarity between two arbitrary strings."""
        return phonetic_similarity(a, b, surface_weight=self._surface_weight)

    def most_similar(self, probe: str, k: int = 20, *,
                     include_self: bool = True,
                     exhaustive: bool = True) -> list[ScoredTerm]:
        """The *k* vocabulary terms most phonetically similar to *probe*.

        Results are sorted best-first and deterministic (ties broken by the
        term's lexicographic order).  ``include_self=False`` drops an exact
        string match of the probe from the ranking, which is what candidate
        generation wants when proposing *alternatives* for a query element.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        if exhaustive or len(self._codes) <= k:
            pool: Iterable[str] = self._codes
        else:
            probe_codes = metaphone_codes(probe)
            pool_set: set[str] = set()
            for code in probe_codes:
                pool_set |= self._buckets.get(code[:1], set())
            if len(pool_set) < k:
                pool_set = set(self._codes)
            pool = pool_set
        scored = []
        for term in pool:
            if not include_self and term == probe:
                continue
            scored.append(ScoredTerm(self.similarity(probe, term), term))
        scored.sort(key=lambda st: (-st.score, st.term))
        return scored[:k]
