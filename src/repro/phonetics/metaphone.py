"""Double Metaphone phonetic codec (Philips, C/C++ Users Journal 2000).

This is a from-scratch Python port of the reference rule set.  The codec maps
a word to a *primary* and an *alternate* code over the alphabet
``0 A F H J K L M N P R S T X`` (``0`` encodes "th", ``X`` encodes "sh/ch").
Two words are considered phonetically identical when any of their codes
match; graded similarity is obtained by comparing codes with Jaro-Winkler
(see :mod:`repro.phonetics.distance`), exactly as in the paper.

The implementation follows the original control flow: a cursor walks the
normalised word and each consonant class appends to both code buffers, with
the alternate buffer diverging for ambiguous spellings (e.g. Slavo-Germanic
words, ``-gn-``, ``sch``...).
"""

from __future__ import annotations

VOWELS = frozenset("AEIOUY")


def _is_vowel(word: str, pos: int) -> bool:
    return 0 <= pos < len(word) and word[pos] in VOWELS


def _is_slavo_germanic(word: str) -> bool:
    return any(tag in word for tag in ("W", "K", "CZ", "WITZ"))


def _contains(word: str, start: int, length: int, *targets: str) -> bool:
    """True if word[start:start+length] equals any target (bounds-safe)."""
    if start < 0:
        return False
    fragment = word[start:start + length]
    return fragment in targets


def double_metaphone(value: str, max_length: int = 8) -> tuple[str, str]:
    """Return the (primary, alternate) Double Metaphone codes for *value*.

    Non-alphabetic characters are ignored.  ``max_length`` bounds the code
    length (the reference implementation uses 4; we default to 8 for finer
    discrimination between long identifiers, matching what one would
    configure in Lucene's ``DoubleMetaphoneFilter``).
    """
    word = "".join(ch for ch in value.upper() if "A" <= ch <= "Z")
    if not word:
        return "", ""

    primary: list[str] = []
    secondary: list[str] = []

    def add(p: str, s: str | None = None) -> None:
        primary.append(p)
        secondary.append(p if s is None else s)

    length = len(word)
    last = length - 1
    slavo_germanic = _is_slavo_germanic(word)
    pos = 0

    # Skip silent letters at the start of the word.
    if word[:2] in ("GN", "KN", "PN", "WR", "PS"):
        pos = 1
    # Initial X is pronounced Z, which maps to S (e.g. "Xavier").
    if word[0] == "X":
        add("S")
        pos = 1

    while pos < length and (len(primary) < max_length
                            or len(secondary) < max_length):
        ch = word[pos]

        if ch in VOWELS:
            if pos == 0:
                add("A")
            pos += 1
            continue

        if ch == "B":
            # "-mb", e.g. "dumb", already skipped over... "mb" handled at M.
            add("P")
            pos += 2 if _contains(word, pos + 1, 1, "B") else 1
            continue

        if ch == "Ç":  # C-cedilla, normalised away above; kept for safety
            add("S")
            pos += 1
            continue

        if ch == "C":
            # Various Germanic spellings: "ACH" not preceded by a vowel.
            if (pos > 1 and not _is_vowel(word, pos - 2)
                    and _contains(word, pos - 1, 3, "ACH")
                    and not _contains(word, pos + 2, 1, "I")
                    and (not _contains(word, pos + 2, 1, "E")
                         or _contains(word, pos - 2, 6, "BACHER", "MACHER"))):
                add("K")
                pos += 2
                continue
            # Special case: "caesar".
            if pos == 0 and _contains(word, pos, 6, "CAESAR"):
                add("S")
                pos += 2
                continue
            # Italian "chianti".
            if _contains(word, pos, 4, "CHIA"):
                add("K")
                pos += 2
                continue
            if _contains(word, pos, 2, "CH"):
                # "michael"
                if pos > 0 and _contains(word, pos, 4, "CHAE"):
                    add("K", "X")
                    pos += 2
                    continue
                # Greek roots at word start, e.g. "chemistry", "chorus".
                if (pos == 0
                        and (_contains(word, pos + 1, 5, "HARAC", "HARIS")
                             or _contains(word, pos + 1, 3,
                                          "HOR", "HYM", "HIA", "HEM"))
                        and not _contains(word, 0, 5, "CHORE")):
                    add("K")
                    pos += 2
                    continue
                # Germanic/Greek "ch" -> K: "van ...", "schooner" etc.
                if ((_contains(word, 0, 4, "VAN ", "VON ")
                     or _contains(word, 0, 3, "SCH"))
                        or _contains(word, pos - 2, 6,
                                     "ORCHES", "ARCHIT", "ORCHID")
                        or _contains(word, pos + 2, 1, "T", "S")
                        or ((pos == 0
                             or _contains(word, pos - 1, 1, "A", "O", "U", "E"))
                            and _contains(word, pos + 2, 1, "L", "R", "N",
                                          "M", "B", "H", "F", "V", "W", " ")
                            )):
                    add("K")
                else:
                    if pos > 0:
                        if _contains(word, 0, 2, "MC"):
                            add("K")
                        else:
                            add("X", "K")
                    else:
                        add("X")
                pos += 2
                continue
            # "czerny"
            if (_contains(word, pos, 2, "CZ")
                    and not _contains(word, pos - 2, 4, "WICZ")):
                add("S", "X")
                pos += 2
                continue
            # "focaccia"
            if _contains(word, pos + 1, 3, "CIA"):
                add("X")
                pos += 3
                continue
            # Double C, but not "McClellan".
            if (_contains(word, pos, 2, "CC")
                    and not (pos == 1 and word[0] == "M")):
                # "bellocchio" but not "bacchus"
                if (_contains(word, pos + 2, 1, "I", "E", "H")
                        and not _contains(word, pos + 2, 2, "HU")):
                    # "accident", "accede", "succeed"
                    if ((pos == 1 and _contains(word, pos - 1, 1, "A"))
                            or _contains(word, pos - 1, 5, "UCCEE", "UCCES")):
                        add("KS")
                    else:
                        add("X")
                    pos += 3
                    continue
                # Pierce's rule.
                add("K")
                pos += 2
                continue
            if _contains(word, pos, 2, "CK", "CG", "CQ"):
                add("K")
                pos += 2
                continue
            if _contains(word, pos, 2, "CI", "CE", "CY"):
                # Italian vs English.
                if _contains(word, pos, 3, "CIO", "CIE", "CIA"):
                    add("S", "X")
                else:
                    add("S")
                pos += 2
                continue
            add("K")
            if _contains(word, pos + 1, 2, " C", " Q", " G"):
                pos += 3
            elif (_contains(word, pos + 1, 1, "C", "K", "Q")
                    and not _contains(word, pos + 1, 2, "CE", "CI")):
                pos += 2
            else:
                pos += 1
            continue

        if ch == "D":
            if _contains(word, pos, 2, "DG"):
                if _contains(word, pos + 2, 1, "I", "E", "Y"):
                    # "edge"
                    add("J")
                    pos += 3
                else:
                    # "edgar"
                    add("TK")
                    pos += 2
                continue
            if _contains(word, pos, 2, "DT", "DD"):
                add("T")
                pos += 2
                continue
            add("T")
            pos += 1
            continue

        if ch == "F":
            add("F")
            pos += 2 if _contains(word, pos + 1, 1, "F") else 1
            continue

        if ch == "G":
            if _contains(word, pos + 1, 1, "H"):
                if pos > 0 and not _is_vowel(word, pos - 1):
                    add("K")
                    pos += 2
                    continue
                if pos == 0:
                    # "ghislane" vs "ghoul"
                    if _contains(word, pos + 2, 1, "I"):
                        add("J")
                    else:
                        add("K")
                    pos += 2
                    continue
                # Parker's rule (with some further refinements): silent GH.
                if ((pos > 1 and _contains(word, pos - 2, 1, "B", "H", "D"))
                        or (pos > 2
                            and _contains(word, pos - 3, 1, "B", "H", "D"))
                        or (pos > 3
                            and _contains(word, pos - 4, 1, "B", "H"))):
                    pos += 2
                    continue
                # "laugh", "McLaughlin", "cough", "gough", "rough", "tough"
                if (pos > 2 and _contains(word, pos - 1, 1, "U")
                        and _contains(word, pos - 3, 1,
                                      "C", "G", "L", "R", "T")):
                    add("F")
                elif pos > 0 and not _contains(word, pos - 1, 1, "I"):
                    add("K")
                pos += 2
                continue
            if _contains(word, pos + 1, 1, "N"):
                if pos == 1 and _is_vowel(word, 0) and not slavo_germanic:
                    add("KN", "N")
                elif (not _contains(word, pos + 2, 2, "EY")
                        and not _contains(word, pos + 1, 1, "Y")
                        and not slavo_germanic):
                    add("N", "KN")
                else:
                    add("KN")
                pos += 2
                continue
            # "tagliaro"
            if _contains(word, pos + 1, 2, "LI") and not slavo_germanic:
                add("KL", "L")
                pos += 2
                continue
            # -ges-, -gep-, -gel- at start
            if (pos == 0
                    and (_contains(word, pos + 1, 1, "Y")
                         or _contains(word, pos + 1, 2,
                                      "ES", "EP", "EB", "EL", "EY", "IB",
                                      "IL", "IN", "IE", "EI", "ER"))):
                add("K", "J")
                pos += 2
                continue
            # -ger-, -gy-
            if ((_contains(word, pos + 1, 2, "ER")
                 or _contains(word, pos + 1, 1, "Y"))
                    and not _contains(word, 0, 6, "DANGER", "RANGER", "MANGER")
                    and not _contains(word, pos - 1, 1, "E", "I")
                    and not _contains(word, pos - 1, 3, "RGY", "OGY")):
                add("K", "J")
                pos += 2
                continue
            # Italian "biaggi"
            if (_contains(word, pos + 1, 1, "E", "I", "Y")
                    or _contains(word, pos - 1, 4, "AGGI", "OGGI")):
                if (_contains(word, 0, 4, "VAN ", "VON ")
                        or _contains(word, 0, 3, "SCH")
                        or _contains(word, pos + 1, 2, "ET")):
                    add("K")
                elif _contains(word, pos + 1, 4, "IER "):
                    add("J")
                elif _contains(word, pos + 1, 3, "IER") and pos + 4 == length:
                    add("J")
                else:
                    add("J", "K")
                pos += 2
                continue
            add("K")
            pos += 2 if _contains(word, pos + 1, 1, "G") else 1
            continue

        if ch == "H":
            # Keep H only between vowels or after certain consonants.
            if (pos == 0 or _is_vowel(word, pos - 1)) and _is_vowel(word,
                                                                    pos + 1):
                add("H")
                pos += 2
            else:
                pos += 1
            continue

        if ch == "J":
            # Spanish "jose", "san jacinto"
            if _contains(word, pos, 4, "JOSE") or _contains(word, 0, 4,
                                                            "SAN "):
                if ((pos == 0 and word[pos + 4:pos + 5] == " ")
                        or _contains(word, 0, 4, "SAN ")):
                    add("H")
                else:
                    add("J", "H")
                pos += 1
                continue
            if pos == 0 and not _contains(word, pos, 4, "JOSE"):
                add("J", "A")  # e.g. "Yankelovich" / "Jankelowicz"
            elif (_is_vowel(word, pos - 1) and not slavo_germanic
                    and _contains(word, pos + 1, 1, "A", "O")):
                add("J", "H")
            elif pos == last:
                add("J", "")
            elif (not _contains(word, pos + 1, 1, "L", "T", "K", "S", "N",
                                "M", "B", "Z")
                    and not _contains(word, pos - 1, 1, "S", "K", "L")):
                add("J")
            pos += 2 if _contains(word, pos + 1, 1, "J") else 1
            continue

        if ch == "K":
            add("K")
            pos += 2 if _contains(word, pos + 1, 1, "K") else 1
            continue

        if ch == "L":
            if _contains(word, pos + 1, 1, "L"):
                # Spanish "cabrillo", "gallegos"
                if ((pos == length - 3
                     and _contains(word, pos - 1, 4, "ILLO", "ILLA", "ALLE"))
                        or ((_contains(word, last - 1, 2, "AS", "OS")
                             or _contains(word, last, 1, "A", "O"))
                            and _contains(word, pos - 1, 4, "ALLE"))):
                    add("L", "")
                    pos += 2
                    continue
                pos += 2
            else:
                pos += 1
            add("L")
            continue

        if ch == "M":
            if ((_contains(word, pos - 1, 3, "UMB")
                 and (pos + 1 == last or _contains(word, pos + 2, 2, "ER")))
                    or _contains(word, pos + 1, 1, "M")):
                pos += 2
            else:
                pos += 1
            add("M")
            continue

        if ch == "N":
            add("N")
            pos += 2 if _contains(word, pos + 1, 1, "N") else 1
            continue

        if ch == "P":
            if _contains(word, pos + 1, 1, "H"):
                add("F")
                pos += 2
                continue
            add("P")
            pos += 2 if _contains(word, pos + 1, 1, "P", "B") else 1
            continue

        if ch == "Q":
            add("K")
            pos += 2 if _contains(word, pos + 1, 1, "Q") else 1
            continue

        if ch == "R":
            # French "rogier", but exclude "hochmeier"
            if (pos == last and not slavo_germanic
                    and _contains(word, pos - 2, 2, "IE")
                    and not _contains(word, pos - 4, 2, "ME", "MA")):
                add("", "R")
            else:
                add("R")
            pos += 2 if _contains(word, pos + 1, 1, "R") else 1
            continue

        if ch == "S":
            # Silent S: "isle", "carlisle"
            if _contains(word, pos - 1, 3, "ISL", "YSL"):
                pos += 1
                continue
            # "sugar"
            if pos == 0 and _contains(word, pos, 5, "SUGAR"):
                add("X", "S")
                pos += 1
                continue
            if _contains(word, pos, 2, "SH"):
                # Germanic "holsheim"
                if _contains(word, pos + 1, 4, "HEIM", "HOEK", "HOLM",
                             "HOLZ"):
                    add("S")
                else:
                    add("X")
                pos += 2
                continue
            # Italian & Armenian "sio"/"sia"
            if (_contains(word, pos, 3, "SIO", "SIA")
                    or _contains(word, pos, 4, "SIAN")):
                if slavo_germanic:
                    add("S")
                else:
                    add("S", "X")
                pos += 3
                continue
            # German/Anglicised "sm", "sn", "sl", "sw": alternate X.
            if ((pos == 0 and _contains(word, pos + 1, 1, "M", "N", "L", "W"))
                    or _contains(word, pos + 1, 1, "Z")):
                add("S", "X")
                pos += 2 if _contains(word, pos + 1, 1, "Z") else 1
                continue
            if _contains(word, pos, 2, "SC"):
                if _contains(word, pos + 2, 1, "H"):
                    # Dutch "schooner" etc., vs "schenker"
                    if _contains(word, pos + 3, 2, "OO", "ER", "EN", "UY",
                                 "ED", "EM"):
                        if _contains(word, pos + 3, 2, "ER", "EN"):
                            add("X", "SK")
                        else:
                            add("SK")
                    else:
                        if (pos == 0 and not _is_vowel(word, 3)
                                and word[3:4] != "W"):
                            add("X", "S")
                        else:
                            add("X")
                    pos += 3
                    continue
                if _contains(word, pos + 2, 1, "I", "E", "Y"):
                    add("S")
                    pos += 3
                    continue
                add("SK")
                pos += 3
                continue
            # French "resnais", "artois"
            if (pos == last and _contains(word, pos - 2, 2, "AI", "OI")):
                add("", "S")
            else:
                add("S")
            pos += 2 if _contains(word, pos + 1, 1, "S", "Z") else 1
            continue

        if ch == "T":
            if _contains(word, pos, 4, "TION"):
                add("X")
                pos += 3
                continue
            if _contains(word, pos, 3, "TIA", "TCH"):
                add("X")
                pos += 3
                continue
            if (_contains(word, pos, 2, "TH")
                    or _contains(word, pos, 3, "TTH")):
                # "thomas", "thames" or Germanic
                if (_contains(word, pos + 2, 2, "OM", "AM")
                        or _contains(word, 0, 4, "VAN ", "VON ")
                        or _contains(word, 0, 3, "SCH")):
                    add("T")
                else:
                    add("0", "T")
                pos += 2
                continue
            add("T")
            pos += 2 if _contains(word, pos + 1, 1, "T", "D") else 1
            continue

        if ch == "V":
            add("F")
            pos += 2 if _contains(word, pos + 1, 1, "V") else 1
            continue

        if ch == "W":
            # "wr" -> R
            if _contains(word, pos, 2, "WR"):
                add("R")
                pos += 2
                continue
            if pos == 0 and (_is_vowel(word, pos + 1)
                             or _contains(word, pos, 2, "WH")):
                # "Wasserman" vs "Vasserman"
                if _is_vowel(word, pos + 1):
                    add("A", "F")
                else:
                    add("A")
            # "Arnow" vs "Arnoff"
            if ((pos == last and _is_vowel(word, pos - 1))
                    or _contains(word, pos - 1, 5, "EWSKI", "EWSKY",
                                 "OWSKI", "OWSKY")
                    or _contains(word, 0, 3, "SCH")):
                add("", "F")
                pos += 1
                continue
            # Polish "filipowicz"
            if _contains(word, pos, 4, "WICZ", "WITZ"):
                add("TS", "FX")
                pos += 4
                continue
            pos += 1
            continue

        if ch == "X":
            # French "breaux": silent final X.
            if not (pos == last
                    and (_contains(word, pos - 3, 3, "IAU", "EAU")
                         or _contains(word, pos - 2, 2, "AU", "OU"))):
                add("KS")
            pos += 2 if _contains(word, pos + 1, 1, "C", "X") else 1
            continue

        if ch == "Z":
            # Chinese pinyin, e.g. "zhao"
            if _contains(word, pos + 1, 1, "H"):
                add("J")
                pos += 2
                continue
            if (_contains(word, pos + 1, 2, "ZO", "ZI", "ZA")
                    or (slavo_germanic and pos > 0
                        and not _contains(word, pos - 1, 1, "T"))):
                add("S", "TS")
            else:
                add("S")
            pos += 2 if _contains(word, pos + 1, 1, "Z") else 1
            continue

        # Any other character (shouldn't occur after normalisation).
        pos += 1

    code_primary = "".join(primary)[:max_length]
    code_secondary = "".join(secondary)[:max_length]
    if code_secondary == code_primary:
        code_secondary = ""
    return code_primary, code_secondary


def metaphone_codes(value: str, max_length: int = 8) -> tuple[str, ...]:
    """All non-empty codes for *value* (primary, plus alternate if distinct).

    Multi-word values are encoded per word and the codes concatenated with a
    space, so that e.g. ``"new york"`` and ``"newark"`` remain comparable via
    Jaro-Winkler on the combined encodings.
    """
    words = value.split()
    if not words:
        return ("",)
    if len(words) == 1:
        primary, alternate = double_metaphone(value, max_length)
        return (primary,) if not alternate else (primary, alternate)
    primaries: list[str] = []
    alternates: list[str] = []
    any_alternate = False
    for word in words:
        primary, alternate = double_metaphone(word, max_length)
        primaries.append(primary)
        if alternate:
            any_alternate = True
            alternates.append(alternate)
        else:
            alternates.append(primary)
    combined_primary = " ".join(primaries)
    if not any_alternate:
        return (combined_primary,)
    return (combined_primary, " ".join(alternates))
