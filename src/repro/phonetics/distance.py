"""Edit- and Jaro-family string similarities.

The paper computes phonetic similarity as the Jaro-Winkler similarity of
Double Metaphone encodings.  Levenshtein and Damerau-Levenshtein are provided
as alternative metrics for ablations and for the ASR noise model.
"""

from __future__ import annotations


def jaro(s1: str, s2: str) -> float:
    """Jaro similarity in [0, 1]; 1.0 means identical strings.

    Uses the standard definition: matches are characters equal within a
    window of ``max(len)/2 - 1``; transpositions are matched characters in a
    different relative order.
    """
    if s1 == s2:
        return 1.0
    len1, len2 = len(s1), len(s2)
    if len1 == 0 or len2 == 0:
        return 0.0
    window = max(len1, len2) // 2 - 1
    if window < 0:
        window = 0
    matched1 = [False] * len1
    matched2 = [False] * len2
    matches = 0
    for i, ch in enumerate(s1):
        lo = max(0, i - window)
        hi = min(len2, i + window + 1)
        for j in range(lo, hi):
            if not matched2[j] and s2[j] == ch:
                matched1[i] = True
                matched2[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(len1):
        if matched1[i]:
            while not matched2[j]:
                j += 1
            if s1[i] != s2[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    m = float(matches)
    return (m / len1 + m / len2 + (m - transpositions) / m) / 3.0


def jaro_winkler(s1: str, s2: str, prefix_scale: float = 0.1,
                 max_prefix: int = 4) -> float:
    """Jaro-Winkler similarity: Jaro boosted by the common prefix length.

    ``prefix_scale`` must not exceed 0.25 or the result can leave [0, 1].
    """
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError("prefix_scale must be within [0, 0.25]")
    base = jaro(s1, s2)
    prefix = 0
    for c1, c2 in zip(s1, s2):
        if c1 != c2 or prefix >= max_prefix:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def levenshtein(s1: str, s2: str) -> int:
    """Classic edit distance (insert / delete / substitute, unit costs)."""
    if s1 == s2:
        return 0
    if len(s1) < len(s2):
        s1, s2 = s2, s1
    if not s2:
        return len(s1)
    previous = list(range(len(s2) + 1))
    for i, c1 in enumerate(s1, start=1):
        current = [i]
        for j, c2 in enumerate(s2, start=1):
            cost = 0 if c1 == c2 else 1
            current.append(min(previous[j] + 1,
                               current[j - 1] + 1,
                               previous[j - 1] + cost))
        previous = current
    return previous[-1]


def damerau_levenshtein(s1: str, s2: str) -> int:
    """Edit distance that also counts adjacent transpositions as one edit."""
    if s1 == s2:
        return 0
    len1, len2 = len(s1), len(s2)
    if len1 == 0:
        return len2
    if len2 == 0:
        return len1
    # Three rolling rows: two back, one back, current.
    two_back = [0] * (len2 + 1)
    one_back = list(range(len2 + 1))
    for i in range(1, len1 + 1):
        current = [i] + [0] * len2
        for j in range(1, len2 + 1):
            cost = 0 if s1[i - 1] == s2[j - 1] else 1
            current[j] = min(one_back[j] + 1,
                             current[j - 1] + 1,
                             one_back[j - 1] + cost)
            if (i > 1 and j > 1 and s1[i - 1] == s2[j - 2]
                    and s1[i - 2] == s2[j - 1]):
                current[j] = min(current[j], two_back[j - 2] + 1)
        two_back, one_back = one_back, current
    return one_back[-1]


def normalized_levenshtein_similarity(s1: str, s2: str) -> float:
    """1 - Levenshtein / max-length, in [0, 1] (1.0 for two empty strings)."""
    longest = max(len(s1), len(s2))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein(s1, s2) / longest
