"""NYSIIS phonetic codec (New York State Identification and Intelligence
System), included for phonetic-codec ablations alongside Double Metaphone."""

from __future__ import annotations

_VOWELS = frozenset("AEIOU")


def nysiis(value: str, max_length: int = 8) -> str:
    """Encode *value* with the original NYSIIS rules."""
    word = "".join(ch for ch in value.upper() if "A" <= ch <= "Z")
    if not word:
        return ""

    # Step 1: transcode first characters.
    for prefix, repl in (("MAC", "MCC"), ("KN", "NN"), ("K", "C"),
                         ("PH", "FF"), ("PF", "FF"), ("SCH", "SSS")):
        if word.startswith(prefix):
            word = repl + word[len(prefix):]
            break

    # Step 2: transcode last characters.
    for suffix, repl in (("EE", "Y"), ("IE", "Y"), ("DT", "D"), ("RT", "D"),
                         ("RD", "D"), ("NT", "D"), ("ND", "D")):
        if word.endswith(suffix):
            word = word[:-len(suffix)] + repl
            break

    key = [word[0]]
    i = 1
    while i < len(word):
        ch = word[i]
        if word[i:i + 2] == "EV":
            translated = "AF"
            step = 2
        elif ch in _VOWELS:
            translated = "A"
            step = 1
        elif ch == "Q":
            translated = "G"
            step = 1
        elif ch == "Z":
            translated = "S"
            step = 1
        elif ch == "M":
            translated = "N"
            step = 1
        elif word[i:i + 2] == "KN":
            translated = "N"
            step = 2
        elif ch == "K":
            translated = "C"
            step = 1
        elif word[i:i + 3] == "SCH":
            translated = "SSS"
            step = 3
        elif word[i:i + 2] == "PH":
            translated = "FF"
            step = 2
        elif (ch == "H" and (word[i - 1] not in _VOWELS
                             or (i + 1 < len(word)
                                 and word[i + 1] not in _VOWELS))):
            # Silent H duplicates the previous (translated) character and is
            # then removed by the dedup step below.
            translated = key[-1]
            step = 1
        elif ch == "W" and word[i - 1] in _VOWELS:
            translated = key[-1]
            step = 1
        else:
            translated = ch
            step = 1
        for out in translated:
            if out != key[-1]:
                key.append(out)
        i += step

    # Step 3: trim terminal S / AY / A.
    if key[-1] == "S" and len(key) > 1:
        key.pop()
    if len(key) >= 2 and key[-2:] == ["A", "Y"]:
        key[-2:] = ["Y"]
    if key[-1] == "A" and len(key) > 1:
        key.pop()

    return "".join(key)[:max_length]
