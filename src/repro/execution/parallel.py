"""Morsel-driven parallel execution on a shared worker pool.

Every request so far evaluated its candidate plan on a single core:
batch execution shares work *across* groups and secondary indexes cut
the work per statement, but neither uses more than one thread of it.
This module adds the two missing axes of parallelism (the architecture
of Leis et al.'s morsel-driven scheme, adapted to a GIL runtime where
NumPy kernels release the GIL):

* **Intra-query data parallelism** — tables are partitioned into
  fixed-size *morsels* (:data:`~repro.sqldb.executor.MORSEL_ROWS` rows,
  64k by default, aligned to the 8192-row zone-map blocks).  Leaf
  predicate masks, selection gathers and the ``bincount``-family
  grouped-aggregate partials run per morsel on the pool and are
  combined by a deterministic, morsel-ordered reduction.
* **Inter-candidate task parallelism** — the batch executor submits the
  independent merged groups of one candidate plan to the same pool (see
  :func:`repro.execution.batch.run_plan`).

**Determinism contract.** Morsel boundaries are fixed (independent of
worker count) and every reduction combines partial results in morsel
index order, so execution is bit-identical to the serial engine for any
pool size — including one.  Exactness per aggregate family: COUNT
partials are integer bincounts (addition exact), MIN/MAX combine with
``np.minimum``/``np.maximum`` (associative, no rounding), and SUM/AVG
use the *fixed-chunk* summation kernel the serial engine itself runs
(:func:`repro.sqldb.executor._chunked_weighted_bincount`), so serial
and parallel runs perform the same additions in the same order.  The
serial path is retained as oracle behind ``MUVE_PARALLEL=0`` /
``--no-parallel``; the Hypothesis suite in
``tests/execution/test_parallel_differential.py`` pins the equivalence.

**Scheduling.** The pool is process-wide and lazily started
(``MUVE_WORKERS`` / ``--workers-exec``, default ``min(8, cpu_count)``).
Its queue is bounded; :meth:`WorkerPool.run_tasks` enqueues what fits
and the *submitting thread participates* — it claims and runs tasks
that no worker has picked up yet.  Participation makes nested scatters
(group tasks scattering morsels onto the same pool) deadlock-free by
construction: a thread waiting for its scatter always has work it can
steal, and a saturated pool degrades gracefully into inline (serial)
execution, recorded on the degradation ladder.  Nesting is additionally
capped at two levels (groups -> morsels); deeper scatters run inline.

**Resilience.** Each task polls the request deadline (propagated by the
task's copied :mod:`contextvars` context) before running; a failed or
deadline-exceeded task cancels its scatter, so queued sibling morsels
drain without running.  A scatter that could not enqueue anything
records an ``executor / parallel_to_serial`` degradation event.

**Observability.** Every scatter runs inside a ``parallel.map`` span
carrying task/inline/worker counts; pool effectiveness is exposed as
``pool_*`` gauges on the metrics registry and as the ``parallel``
section of ``/api/stats``.
"""

from __future__ import annotations

import contextvars
import os
import threading
from collections import deque
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.errors import ReproError
from repro.flags import env_raw, env_switch
from repro.observability import get_registry, trace_span
from repro.resilience import current_deadline, record_degradation
from repro.sqldb import executor as _kernels

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.observability import MetricsRegistry
    from repro.sqldb.database import Database

__all__ = [
    "WorkerPool",
    "configure_pool",
    "default_workers",
    "get_pool",
    "morsel_bounds",
    "parallel_enabled",
    "parallel_gather",
    "pool_stats",
    "register_parallel_metrics",
    "reset_parallel_stats",
    "reset_pool",
    "set_parallel_enabled",
    "warm_database",
]


# ---------------------------------------------------------------------------
# Enable flag (escape hatch)
# ---------------------------------------------------------------------------

_enabled = env_switch("MUVE_PARALLEL")


def parallel_enabled() -> bool:
    """Whether execution scatters work onto the shared pool."""
    return _enabled


def set_parallel_enabled(enabled: bool) -> None:
    """Globally enable/disable parallel execution (``--no-parallel``)."""
    global _enabled
    _enabled = bool(enabled)


def default_workers() -> int:
    """Worker count from ``MUVE_WORKERS``, default ``min(8, cpu_count)``."""
    raw = (env_raw("MUVE_WORKERS") or "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise ReproError(
                f"MUVE_WORKERS must be an integer, got {raw!r}") from None
        if value <= 0:
            raise ReproError(
                f"MUVE_WORKERS must be positive, got {value}")
        return value
    return min(8, os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# Process-wide counters
# ---------------------------------------------------------------------------


class _PoolStats:
    """Thread-safe counters describing pool effectiveness."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with getattr(self, "_lock", threading.Lock()):
            self.scatters = 0
            self.tasks = 0
            self.inline_runs = 0
            self.worker_runs = 0
            self.rejected = 0
            self.saturations = 0
            self.cancelled = 0
            self.depth_clips = 0

    def record_scatter(self, tasks: int, inline: int, worker: int,
                       rejected: int, saturated: bool,
                       cancelled: int) -> None:
        with self._lock:
            self.scatters += 1
            self.tasks += tasks
            self.inline_runs += inline
            self.worker_runs += worker
            self.rejected += rejected
            self.saturations += int(saturated)
            self.cancelled += cancelled

    def record_depth_clip(self, tasks: int) -> None:
        with self._lock:
            self.depth_clips += 1
            self.tasks += tasks
            self.inline_runs += tasks

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return {
                "scatters": float(self.scatters),
                "tasks": float(self.tasks),
                "inline_runs": float(self.inline_runs),
                "worker_runs": float(self.worker_runs),
                "rejected": float(self.rejected),
                "saturations": float(self.saturations),
                "cancelled": float(self.cancelled),
                "depth_clips": float(self.depth_clips),
            }


_STATS = _PoolStats()


def reset_parallel_stats() -> None:
    _STATS.reset()


def pool_stats() -> dict[str, float]:
    """Process-wide pool counters (the ``parallel`` section of
    ``/api/stats``)."""
    stats = _STATS.snapshot()
    pool = _POOL
    stats["workers"] = float(pool.workers if pool is not None
                             else default_workers())
    stats["queue_depth"] = float(pool.queue_depth if pool is not None
                                 else 0)
    stats["started"] = 1.0 if pool is not None and pool.started else 0.0
    stats["enabled"] = 1.0 if _enabled else 0.0
    return stats


def register_parallel_metrics(registry: "MetricsRegistry") -> None:
    """Expose the pool counters as callback gauges on *registry*."""
    for key in ("scatters", "tasks", "inline_runs", "worker_runs",
                "rejected", "saturations", "cancelled", "depth_clips",
                "workers", "queue_depth", "started", "enabled"):
        registry.register_gauge(f"pool_{key}",
                                lambda key=key: pool_stats()[key])


# ---------------------------------------------------------------------------
# The worker pool
# ---------------------------------------------------------------------------

#: Scatter depth cap: request-level group tasks (depth 0 -> 1) may
#: scatter morsels (depth 1 -> 2); anything deeper runs inline.  The cap
#: bounds queue pressure and makes the participation argument local.
_MAX_SCATTER_DEPTH = 2

_DEPTH: contextvars.ContextVar[int] = contextvars.ContextVar(
    "muve_scatter_depth", default=0)


class _Cancelled(Exception):
    """Internal marker: a task drained without running."""


class _Task:
    """One unit of scattered work.

    Claiming is guarded by the pool lock: a task runs exactly once, on
    whichever thread (worker or submitter) claims it first.  Each task
    runs inside its own copy of the submitting thread's context, so
    spans nest under the caller's span and the request deadline and
    degradation collector propagate.
    """

    __slots__ = ("fn", "context", "cancel", "site", "claimed", "done",
                 "result", "error", "inline")

    def __init__(self, fn: Callable[[], object],
                 cancel: threading.Event, site: str, depth: int) -> None:
        self.fn = fn
        self.context = contextvars.copy_context()
        self.context.run(_DEPTH.set, depth)
        self.cancel = cancel
        self.site = site
        self.claimed = False
        self.done = threading.Event()
        self.result: object = None
        self.error: BaseException | None = None
        self.inline = False

    def run(self, inline: bool) -> None:
        self.inline = inline
        try:
            if self.cancel.is_set():
                # A failed sibling drained the scatter: complete
                # immediately without running (the morsel-cancellation
                # path — queued work is discarded, not executed).
                self.error = _Cancelled()
            else:
                self.result = self.context.run(self._invoke)
        except BaseException as exc:
            self.error = exc
            self.cancel.set()
        finally:
            self.done.set()

    def _invoke(self) -> object:
        deadline = current_deadline()
        if deadline is not None:
            deadline.check(self.site)
        return self.fn()


class WorkerPool:
    """A bounded-queue thread pool with caller participation.

    Workers start lazily on the first scatter and are daemon threads (a
    pool never blocks interpreter shutdown).  ``queue_capacity`` bounds
    the number of queued-but-unclaimed tasks; scatters beyond it fall
    back to inline execution on the submitting thread.
    """

    def __init__(self, workers: int, queue_capacity: int | None = None,
                 name: str = "muve-exec") -> None:
        self.workers = max(1, int(workers))
        self._capacity = (queue_capacity if queue_capacity is not None
                          else self.workers * 8)
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._space = threading.Condition(self._lock)
        self._queue: deque[_Task] = deque()
        self._threads: list[threading.Thread] = []
        self._name = name
        self._shutdown = False

    # -- introspection ---------------------------------------------------

    @property
    def started(self) -> bool:
        return bool(self._threads)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # -- lifecycle -------------------------------------------------------

    def _ensure_started(self) -> None:
        if self._threads:
            return
        with self._lock:
            if self._threads or self._shutdown:
                return
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"{self._name}-{index}", daemon=True)
                thread.start()
                self._threads.append(thread)

    def shutdown(self) -> None:
        """Stop the workers once the queue drains (tests, pool resize)."""
        with self._available:
            self._shutdown = True
            self._available.notify_all()
            self._space.notify_all()
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads = []

    def _worker_loop(self) -> None:
        while True:
            with self._available:
                while not self._queue and not self._shutdown:
                    self._available.wait()
                if not self._queue:
                    return  # shutdown with an empty queue
                task = self._queue.popleft()
                self._space.notify()
                if task.claimed:
                    continue  # the submitter already ran it inline
                task.claimed = True
            task.run(inline=False)

    # -- scattering ------------------------------------------------------

    def run_tasks(self, thunks: Sequence[Callable[[], object]],
                  site: str = "parallel",
                  participate: bool = True) -> list:
        """Run *thunks*, returning their results in submission order.

        The deterministic workhorse: result order is the thunk order
        regardless of which thread ran what.  The submitting thread
        participates by default (claims tasks no worker picked up),
        which makes nested scatters deadlock-free and turns a saturated
        pool into plain serial execution.  ``participate=False`` blocks
        for queue space instead (the CLI load test uses this to keep
        ``--workers`` meaning exactly N concurrent requests); it must
        not be used from code that can run *on* this pool.

        If any task raises, the scatter is cancelled — queued siblings
        drain without running — and the error of the lowest-index
        failed task is re-raised once every task has completed.
        """
        thunks = list(thunks)
        if not thunks:
            return []
        if len(thunks) == 1:
            return [thunks[0]()]
        depth = _DEPTH.get()
        if depth >= _MAX_SCATTER_DEPTH:
            _STATS.record_depth_clip(len(thunks))
            return [fn() for fn in thunks]
        self._ensure_started()
        cancel = threading.Event()
        tasks = [_Task(fn, cancel, site, depth + 1) for fn in thunks]
        with trace_span("parallel.map", site=site) as span:
            enqueued = 0
            for task in tasks:
                with self._available:
                    if participate:
                        if len(self._queue) >= self._capacity \
                                or self._shutdown:
                            break  # the submitter will run the rest
                    else:
                        while len(self._queue) >= self._capacity \
                                and not self._shutdown:
                            self._space.wait()
                        if self._shutdown:
                            break
                    self._queue.append(task)
                    enqueued += 1
                    self._available.notify()
            inline_runs = 0
            if participate:
                for task in tasks:
                    with self._lock:
                        if task.claimed:
                            continue
                        task.claimed = True
                    task.run(inline=True)
                    inline_runs += 1
            for task in tasks:
                task.done.wait()
            cancelled = sum(1 for t in tasks
                            if isinstance(t.error, _Cancelled))
            worker_runs = len(tasks) - inline_runs - cancelled
            saturated = participate and enqueued == 0
            span.set_attribute("tasks", len(tasks))
            span.set_attribute("inline_runs", inline_runs)
            span.set_attribute("worker_runs", worker_runs)
            if cancelled:
                span.set_attribute("cancelled", cancelled)
            _STATS.record_scatter(
                tasks=len(tasks), inline=inline_runs, worker=worker_runs,
                rejected=len(tasks) - enqueued, saturated=saturated,
                cancelled=cancelled)
            if saturated:
                record_degradation(
                    "executor", "parallel_to_serial", "pool_saturated",
                    detail=f"{len(tasks)} tasks ran inline at {site}")
                get_registry().counter("pool_saturation_total").inc()
            failed = next((t for t in tasks if t.error is not None
                           and not isinstance(t.error, _Cancelled)), None)
            if failed is not None:
                span.set_attribute("error_site", failed.site)
                raise failed.error
        return [task.result for task in tasks]


# ---------------------------------------------------------------------------
# The process-wide pool
# ---------------------------------------------------------------------------

_POOL: WorkerPool | None = None
_POOL_LOCK = threading.Lock()


def get_pool() -> WorkerPool:
    """The process-wide execution pool (created lazily, started on first
    scatter)."""
    global _POOL
    pool = _POOL
    if pool is None:
        with _POOL_LOCK:
            if _POOL is None:
                _POOL = WorkerPool(default_workers())
            pool = _POOL
    return pool


def configure_pool(workers: int) -> WorkerPool:
    """(Re)create the shared pool with *workers* (``--workers-exec``).

    Call before serving; an existing pool is shut down after the new
    one is swapped in, so concurrent scatters never observe a dead
    pool.
    """
    global _POOL
    if workers <= 0:
        raise ReproError(f"worker count must be positive, got {workers}")
    with _POOL_LOCK:
        old, _POOL = _POOL, WorkerPool(workers)
        pool = _POOL
    if old is not None:
        old.shutdown()
    return pool


def reset_pool() -> None:
    """Shut down and forget the shared pool (test isolation)."""
    global _POOL
    with _POOL_LOCK:
        old, _POOL = _POOL, None
    if old is not None:
        old.shutdown()


# ---------------------------------------------------------------------------
# Morsel helpers (fixed partitioning, deterministic combination)
# ---------------------------------------------------------------------------


def morsel_bounds(n_rows: int) -> list[tuple[int, int]]:
    """Fixed ``[lo, hi)`` morsel boundaries over *n_rows* rows.

    Boundaries depend only on the row count and
    :data:`~repro.sqldb.executor.MORSEL_ROWS` (read dynamically so tests
    can shrink it), never on the worker count — the precondition for
    the deterministic ordered reductions.
    """
    step = _kernels.MORSEL_ROWS
    return [(lo, min(lo + step, n_rows))
            for lo in range(0, n_rows, step)]


def parallel_gather(array: np.ndarray, selection: np.ndarray,
                    runner: Callable[[Sequence[Callable]], list] | None,
                    ) -> np.ndarray:
    """``array[selection]`` with the copy scattered across morsels.

    *selection* is a boolean mask (chunked over rows) or an int64
    ascending positions array (chunked over positions).  Concatenating
    per-morsel gathers in index order reproduces the single fancy-index
    bit for bit — gathering is a pure copy — so the threshold below is
    a performance choice, not a semantic one.
    """
    if selection.dtype == np.bool_:
        n = len(array)
        if runner is None or n < 2 * _kernels.MORSEL_ROWS:
            return array[selection]
        bounds = morsel_bounds(n)
        parts = runner([
            lambda lo=lo, hi=hi: array[lo:hi][selection[lo:hi]]
            for lo, hi in bounds])
        return np.concatenate(parts)
    n = len(selection)
    if runner is None or n < 2 * _kernels.MORSEL_ROWS:
        return array[selection]
    bounds = morsel_bounds(n)
    parts = runner([lambda lo=lo, hi=hi: array[selection[lo:hi]]
                    for lo, hi in bounds])
    return np.concatenate(parts)


# ---------------------------------------------------------------------------
# Pool-assisted cache warming (statistics + secondary indexes)
# ---------------------------------------------------------------------------


def warm_database(database: "Database",
                  table_names: Sequence[str] | None = None) -> int:
    """Build table statistics and secondary indexes through the pool.

    One task per structure — the statistics full scan, one inverted
    index per column, one sorted projection per numeric column — so a
    cold table warms in parallel instead of paying each lazy build on
    the first unlucky request.  Builds keep their ``index.build`` spans
    (tasks run in copied contexts).  Returns the number of build tasks.
    """
    from repro.sqldb.types import DataType
    if table_names is None:
        table_names = sorted(database.catalog.table_names())
    thunks: list[Callable[[], object]] = []
    for name in table_names:
        table = database.table(name)
        thunks.append(
            lambda table_name=name: database.statistics(table_name))
        for column in table.schema.columns:
            thunks.append(lambda t=table, c=column.name:
                          t.indexes().inverted(c))
            if column.dtype in (DataType.INT, DataType.FLOAT):
                thunks.append(lambda t=table, c=column.name:
                              t.indexes().sorted_projection(c))
    if not thunks:
        return 0
    if parallel_enabled():
        get_pool().run_tasks(thunks, site="index.build")
    else:
        for thunk in thunks:
            thunk()
    return len(thunks)
