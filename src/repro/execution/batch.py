"""One-pass batch execution for candidate workloads (Section 8.1 fast path).

An :class:`~repro.execution.merging.ExecutionPlan` answers a whole
candidate set, but the per-group path re-reads the base table for every
group: each merged statement lexes, parses, binds, and evaluates its WHERE
clause from scratch, even though candidate queries are near-duplicates
whose predicates differ in a single constant.  The batch executor answers
the entire plan with shared work:

* **Statement binding up front** — every group statement resolves through
  the database's parsed-and-bound statement cache
  (:meth:`~repro.sqldb.database.Database.bound_statement`), so repeated
  SQL never touches the lexer or parser again.
* **Mask cache** — leaf predicates (``borough = 'Brooklyn'``,
  ``agency IN (...)``) are evaluated once per request and reused across
  every group that references them; AND/OR/NOT combine the cached leaf
  masks.  Since candidates share their fixed predicates, a request that
  would scan the table once per group instead computes each distinct
  column comparison exactly once.
* **Shared factorisation** — numeric GROUP BY columns are factorised once
  per request (``np.unique(..., return_inverse=True)`` over the full
  column) and the codes are masked per group; TEXT columns already share
  the table's dictionary encoding.
* **Fused aggregate kernels** — per-group aggregates run through the same
  ``np.bincount``-based kernels as the engine
  (:func:`~repro.sqldb.executor._grouped_aggregate`), guaranteeing results
  identical to per-group execution bit for bit.

Shapes the batch kernels do not cover fall back to a plain
``database.execute`` per group, and the whole path can be disabled with
:func:`set_batch_enabled` (CLI ``--no-batch-exec``, environment
``MUVE_BATCH_EXEC=off``) or is bypassed automatically when the database
simulates page I/O (the disk-resident scaling regime, where per-statement
sleeps model the scan cost the batch path would skip).

On top of the shared work, plans execute in parallel on the shared
worker pool (:mod:`repro.execution.parallel`): independent merged
groups become pool tasks, and within a group the leaf-mask scans,
selection gathers and grouped-aggregate kernels scatter across fixed
64k-row morsels.  The per-request memo below is single-flight, so
concurrent groups wanting the same leaf mask compute it exactly once.
Results stay bit-identical to serial execution (``MUVE_PARALLEL=0`` /
``--no-parallel`` keeps the serial oracle) because morsel boundaries
are fixed and every reduction combines partials in morsel order.

Observability: each plan runs inside an ``executor.batch`` span carrying
mask-reuse and scans-saved attributes; per-group ``executor.group`` and
``sqldb.execute`` spans match the legacy path's shape so traces stay
comparable, and process-wide counters are exposed through
:func:`batch_stats` (``/api/stats``) and the metrics registry.

A **scan** here is one full pass over a base-table column to build a
boolean mask (a leaf predicate or a TABLESAMPLE draw).  The legacy path
performs one per leaf per group; the batch path one per *distinct* leaf
per request — the difference is the ``scans_saved`` metric.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import NullAggregateError
from repro.flags import env_switch
from repro.observability import get_registry, trace_span
from repro.resilience import current_deadline
from repro.execution.parallel import (
    WorkerPool,
    get_pool,
    parallel_enabled,
    parallel_gather,
)
from repro.sqldb.database import Database, QueryResult
from repro.sqldb.executor import (
    BoundStatement,
    _apply_having,
    _grouped_aggregate,
    _order_and_limit,
    _scalar_aggregate,
)
from repro.sqldb import executor as _kernels
from repro.sqldb.expressions import And, BooleanExpr, Not, Or
from repro.sqldb.index import (
    indexes_enabled,
    record_index_fallback,
    record_index_statement,
    resolve_leaf,
    resolve_selection,
    selection_size,
)
from repro.sqldb.table import Table

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.caching import QueryResultCache
    from repro.execution.merging import ExecutionPlan
    from repro.sqldb.query import AggregateQuery

__all__ = [
    "batch_enabled",
    "batch_stats",
    "register_batch_metrics",
    "request_context",
    "reset_batch_stats",
    "run_plan",
    "set_batch_enabled",
]


# ---------------------------------------------------------------------------
# Enable flag (escape hatch)
# ---------------------------------------------------------------------------

_enabled = env_switch("MUVE_BATCH_EXEC")


def batch_enabled() -> bool:
    """Whether execution plans default to the batch path."""
    return _enabled


def set_batch_enabled(enabled: bool) -> None:
    """Globally enable/disable the batch path (``--no-batch-exec``)."""
    global _enabled
    _enabled = bool(enabled)


# ---------------------------------------------------------------------------
# Process-wide counters
# ---------------------------------------------------------------------------


class _BatchStats:
    """Thread-safe counters describing batch-executor effectiveness."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with getattr(self, "_lock", threading.Lock()):
            self.requests = 0
            self.groups = 0
            self.fallback_groups = 0
            self.masks_computed = 0
            self.masks_reused = 0
            self.scans_saved = 0
            self.index_statements = 0

    def record(self, groups: int, fallbacks: int, masks_computed: int,
               masks_reused: int, scans_saved: int,
               index_statements: int = 0) -> None:
        with self._lock:
            self.requests += 1
            self.groups += groups
            self.fallback_groups += fallbacks
            self.masks_computed += masks_computed
            self.masks_reused += masks_reused
            self.scans_saved += scans_saved
            self.index_statements += index_statements

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return {
                "requests": float(self.requests),
                "groups": float(self.groups),
                "fallback_groups": float(self.fallback_groups),
                "masks_computed": float(self.masks_computed),
                "masks_reused": float(self.masks_reused),
                "scans_saved": float(self.scans_saved),
                "index_statements": float(self.index_statements),
            }


_STATS = _BatchStats()


def batch_stats() -> dict[str, float]:
    """Process-wide batch-executor counters (``/api/stats``)."""
    return _STATS.snapshot()


def reset_batch_stats() -> None:
    _STATS.reset()


def register_batch_metrics(registry) -> None:
    """Expose the batch counters as callback gauges on *registry*."""
    for key in ("requests", "groups", "fallback_groups", "masks_computed",
                "masks_reused", "scans_saved", "index_statements"):
        registry.register_gauge(f"batch_{key}",
                                lambda key=key: batch_stats()[key])


# ---------------------------------------------------------------------------
# Per-request shared state
# ---------------------------------------------------------------------------


class _MorselView:
    """A contiguous row window of a :class:`Table` for per-morsel leaf
    evaluation.

    Exposes exactly the surface leaf predicates touch — ``schema``,
    ``num_rows``, ``column`` and ``dictionary`` — as zero-copy slices.
    Every leaf evaluates elementwise per row (comparisons, dictionary
    code membership, LIKE over dictionary matches), so concatenating
    per-morsel masks in index order reproduces the full-table
    ``expr.evaluate(table)`` bit for bit.
    """

    __slots__ = ("_table", "_lo", "_hi", "schema")

    def __init__(self, table: Table, lo: int, hi: int) -> None:
        self._table = table
        self._lo = lo
        self._hi = hi
        self.schema = table.schema

    @property
    def num_rows(self) -> int:
        return self._hi - self._lo

    def column(self, name: str) -> np.ndarray:
        return self._table.column(name)[self._lo:self._hi]

    def dictionary(self, name: str):
        uniques, codes, index = self._table.dictionary(name)
        return uniques, codes[self._lo:self._hi], index


def _evaluate_leaf(expr: BooleanExpr, table: Table,
                   runner) -> np.ndarray:
    """Evaluate one leaf predicate, scattered across morsels when the
    table is big enough for the pool to pay for itself."""
    n_rows = table.num_rows
    if runner is None or n_rows < 2 * _kernels.MORSEL_ROWS:
        return expr.evaluate(table)
    # Lazy structures (column arrays, dictionaries) build under the
    # table's double-checked locks: the first morsel builds, siblings
    # wait — same total cost as the serial path.
    parts = runner([
        lambda lo=lo, hi=hi: expr.evaluate(_MorselView(table, lo, hi))
        for lo, hi in _kernels._chunk_bounds(n_rows)])
    return np.concatenate(parts)


class _Missing:
    pass


_MISSING = _Missing()


class _Pending:
    """In-flight marker for the single-flight memo cells."""

    __slots__ = ("event",)

    def __init__(self) -> None:
        self.event = threading.Event()


class _RequestContext:
    """Work shared across all groups of one request.

    Holds the leaf-predicate mask cache, index-selection cache and the
    numeric GROUP BY factorisations; all are keyed on bound
    (schema-canonical) objects so textual variations of the same
    predicate share one entry.  Since groups of one plan now execute
    concurrently on the worker pool, every memo is **single-flight**:
    the first group to want a key computes it while later groups block
    on its event, so each distinct leaf is still scanned exactly once
    per request.  One context may serve several ``run_plan`` calls of
    the same request (the progressive strategies execute one plan per
    emitted update) — create it with :func:`request_context`.
    """

    def __init__(self, database: Database,
                 pool: WorkerPool | None = None) -> None:
        self.database = database
        self.pool = pool
        if pool is not None:
            self.runner = (lambda thunks:
                           pool.run_tasks(thunks, site="executor.morsel"))
        else:
            self.runner = None
        self._lock = threading.Lock()
        self._masks: dict[tuple[str, BooleanExpr], object] = {}
        self._selections: dict[
            tuple[str, str, BooleanExpr], object] = {}
        self._numeric_factors: dict[tuple[str, str], object] = {}
        self.masks_computed = 0
        self.masks_reused = 0
        self.sample_masks = 0
        self.legacy_scans = 0  # masks the per-group path would have built
        self.index_statements = 0
        self._leaf_counts: dict[int, int] = {}

    # -- thread-safe counters --------------------------------------------

    def bump(self, counter: str, delta: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + delta)

    def counters(self) -> dict[str, int]:
        """Snapshot of the effectiveness counters; ``run_plan`` records
        per-plan deltas between two snapshots so a shared context keeps
        every plan's numbers honest."""
        with self._lock:
            return {
                "masks_computed": self.masks_computed,
                "masks_reused": self.masks_reused,
                "sample_masks": self.sample_masks,
                "legacy_scans": self.legacy_scans,
                "index_statements": self.index_statements,
            }

    # -- single-flight memoisation ---------------------------------------

    def _single_flight(self, store: dict, key, compute):
        """``(value, cached)`` from *store*, computing at most once.

        The first caller installs a :class:`_Pending` cell and computes
        outside the lock; concurrent callers wait on its event and
        re-read.  A failed compute removes the cell so the next caller
        retries.  ``None`` is a legitimate cached value (index
        selections memoise misses).
        """
        while True:
            with self._lock:
                cell = store.get(key, _MISSING)
                if cell is _MISSING:
                    pending = _Pending()
                    store[key] = pending
                    break
                if not isinstance(cell, _Pending):
                    return cell, True
            cell.event.wait()
        try:
            value = compute()
        except BaseException:
            with self._lock:
                del store[key]
            pending.event.set()
            raise
        with self._lock:
            store[key] = value
        pending.event.set()
        return value, False

    def leaf_count(self, where: BooleanExpr | None) -> int:
        """Leaf predicates of a bound WHERE tree, memoised by identity
        (bound statements are cached, so trees recur across requests).
        Plain dict ops are atomic under the GIL and the count is
        idempotent, so concurrent groups at worst compute it twice."""
        if where is None:
            return 0
        key = id(where)
        count = self._leaf_counts.get(key)
        if count is None:
            count = _count_leaves(where)
            self._leaf_counts[key] = count
        return count

    # -- predicate masks -------------------------------------------------

    def mask(self, expr: BooleanExpr, table: Table) -> np.ndarray:
        """The boolean mask of *expr*, memoised per request.

        Only *leaf* predicates are cached: they are what candidate
        workloads share across groups, their keys are cheap to hash, and
        combinator results almost never recur once identical WHERE
        clauses have been merged away (hashing whole subtrees per lookup
        cost more than it saved).  The cache has two levels — this
        request's single-flight dict, then the database's cross-request
        mask cache (leaf masks are pure functions of table data; the
        database drops them on any mutation).  Combinators replicate
        the engine's evaluation (including its short-circuiting)
        exactly.  Returned arrays may be cache-owned — callers must not
        mutate them in place (all call sites combine with
        ``&``/``~``/fancy indexing, which allocate).
        """
        return self._mask(expr, table, table.schema.name.lower())

    def _mask(self, expr: BooleanExpr, table: Table,
              table_key: str) -> np.ndarray:
        if isinstance(expr, And):
            if not expr.children:
                return np.ones(table.num_rows, dtype=bool)
            mask = self._mask(expr.children[0], table, table_key)
            for child in expr.children[1:]:
                if not mask.any():
                    break
                mask = mask & self._mask(child, table, table_key)
            return mask
        if isinstance(expr, Or):
            if not expr.children:
                return np.zeros(table.num_rows, dtype=bool)
            mask = self._mask(expr.children[0], table, table_key)
            for child in expr.children[1:]:
                if mask.all():
                    break
                mask = mask | self._mask(child, table, table_key)
            return mask
        if isinstance(expr, Not):
            return ~self._mask(expr.child, table, table_key)
        key = (table_key, expr)

        def compute() -> np.ndarray:
            cached = self.database.cached_mask(key)
            if cached is not None:
                # Warm from an earlier request: the leaf was never
                # scanned.
                self.bump("masks_reused")
                return cached
            computed = _evaluate_leaf(expr, table, self.runner)
            self.bump("masks_computed")
            self.database.store_mask(key, computed)
            return computed

        mask, cached = self._single_flight(self._masks, key, compute)
        if cached:
            self.bump("masks_reused")
        return mask

    # -- index selections ------------------------------------------------

    def selection(self, where: BooleanExpr,
                  table: Table) -> np.ndarray | None:
        """Index-resolved selection of a bound WHERE tree, or None.

        Leaf selections (postings, range positions/masks) share the same
        two-level memoisation as boolean leaf masks — this request's
        single-flight dict, then the database's cross-request cache
        (dropped on any data mutation) — under ``("idx", table, expr)``
        keys so they never collide with scan masks for the same
        predicate.  A leaf with no index path memoises ``None`` for the
        request, which makes the whole tree fall back to the mask path.
        """
        table_key = table.schema.name.lower()

        def leaf(expr: BooleanExpr, leaf_table: Table):
            key = ("idx", table_key, expr)

            def compute():
                selection = self.database.cached_mask(key)
                if selection is not None:
                    self.bump("masks_reused")
                    return selection
                selection = resolve_leaf(expr, leaf_table)
                if selection is not None:
                    self.database.store_mask(key, selection)
                return selection

            value, cached = self._single_flight(self._selections, key,
                                                compute)
            if cached and value is not None:
                self.bump("masks_reused")
            return value

        return resolve_selection(where, table, leaf_cache=leaf)

    # -- shared numeric factorisation ------------------------------------

    def numeric_factor(self, table: Table,
                       column: str) -> tuple[np.ndarray, np.ndarray]:
        """``(uniques, codes)`` of a numeric column over the *full* table.

        Computed once per request and masked per group; ``np.unique``
        sorts, so per-group codes keep the same value order the engine's
        per-group factorisation would produce.
        """
        key = (table.schema.name.lower(), column)

        def compute() -> tuple[np.ndarray, np.ndarray]:
            array = table.column(column)
            uniques, codes = np.unique(array, return_inverse=True)
            return uniques, codes

        value, _ = self._single_flight(self._numeric_factors, key,
                                       compute)
        return value


def request_context(database: Database,
                    parallel: bool | None = None) -> _RequestContext:
    """Shared per-request batch state, pool-backed when parallel
    execution is on.

    The progressive strategies create one context per request and pass
    it through every ``run_plan`` call they make, so all emitted updates
    share one mask cache and one pool.  *parallel* is three-valued:
    ``None`` (auto, the serving default) uses the pool when the global
    :func:`~repro.execution.parallel.parallel_enabled` flag is on *and*
    the pool has more than one worker — a one-worker pool (e.g. the
    ``min(8, cpu_count)`` default on a single-core host) can never run
    tasks concurrently with a participating submitter paying for it, so
    auto mode keeps such hosts on the plain serial path.  ``True``
    forces the pool regardless of size (differential tests and the
    scaling benchmark measure the pool itself); ``False`` is the serial
    oracle.
    """
    if parallel is None:
        parallel = parallel_enabled() and get_pool().workers > 1
    pool = get_pool() if parallel else None
    return _RequestContext(database, pool=pool)


def _count_leaves(expr: BooleanExpr | None) -> int:
    """Number of leaf predicates — full-column mask builds — in a tree."""
    if expr is None:
        return 0
    if isinstance(expr, (And, Or)):
        return sum(_count_leaves(child) for child in expr.children)
    if isinstance(expr, Not):
        return _count_leaves(expr.child)
    return 1


# ---------------------------------------------------------------------------
# Statement execution with shared state
# ---------------------------------------------------------------------------


def _execute_statement(ctx: _RequestContext,
                       bound: BoundStatement) -> QueryResult:
    """Execute one (bound) group statement through the batch kernels.

    Mirrors :func:`repro.sqldb.executor.execute_bound` step for step —
    the only differences are the request-shared mask cache and GROUP BY
    factorisations, which produce bit-identical filtered arrays and group
    partitions, hence bit-identical results.
    """
    statement = bound.statement
    database = ctx.database
    table = database.table(statement.table)
    with trace_span("sqldb.execute") as span:
        span.set_attribute("table", statement.table)
        span.set_attribute("batch", True)
        start = time.perf_counter()

        # Like the engine, ``selection`` is either a boolean mask or an
        # int64 positions array; ``legacy_scans`` keeps charging what
        # the per-group path *would* have scanned either way.
        selection: np.ndarray | None = None
        access_path = "scan"
        if statement.sample_fraction is not None \
                and statement.sample_fraction < 1.0:
            rng = database.sampling_rng(statement)
            selection = (rng.random(table.num_rows)
                         < statement.sample_fraction)
            ctx.bump("sample_masks")
            ctx.bump("legacy_scans")
            if bound.where is not None:
                selection = selection & ctx.mask(bound.where, table)
                ctx.bump("legacy_scans", ctx.leaf_count(bound.where))
        elif bound.where is not None:
            ctx.bump("legacy_scans", ctx.leaf_count(bound.where))
            if indexes_enabled():
                selection = ctx.selection(bound.where, table)
            if selection is not None:
                access_path = "index"
                ctx.bump("index_statements")
                record_index_statement(selection_size(selection),
                                       table.num_rows)
            else:
                if indexes_enabled():
                    record_index_fallback()
                selection = ctx.mask(bound.where, table)

        needed = {agg.column for agg in bound.aggregates
                  if agg.column is not None}
        if selection is None:
            arrays = {name: table.column(name) for name in needed}
            row_count = table.num_rows
        else:
            arrays = {name: parallel_gather(table.column(name), selection,
                                            ctx.runner)
                      for name in needed}
            row_count = selection_size(selection)
        span.set_attribute("rows_scanned", row_count)
        span.set_attribute("rows_total", table.num_rows)
        span.set_attribute("access_path", access_path)

        if bound.group_columns:
            # The pre-grouped aggregate probe: full-table group codes
            # (dictionary or shared factorisation) gathered at only the
            # selected positions — O(result), not O(rows), when the
            # predicate came out of an index.
            group_factors: list[tuple[np.ndarray, np.ndarray]] = []
            for name in bound.group_columns:
                column = table.column(name)
                if column.dtype == object:
                    uniques, codes, _ = table.dictionary(name)
                else:
                    uniques, codes = ctx.numeric_factor(table, name)
                group_factors.append(
                    (uniques,
                     codes if selection is None
                     else parallel_gather(codes, selection, ctx.runner)))
            names, rows = _grouped_aggregate(
                arrays, row_count, bound.group_columns, group_factors,
                bound.aggregates, having=statement.having,
                runner=ctx.runner)
        else:
            names, rows = _scalar_aggregate(arrays, row_count,
                                            bound.aggregates)
            if statement.having:
                rows = _apply_having(names, rows, statement)
        rows = _order_and_limit(names, rows, statement)
        elapsed = time.perf_counter() - start
        span.set_attribute("rows_returned", len(rows))
        span.set_attribute("elapsed_ms", round(elapsed * 1000.0, 4))
    # The aggregate kernels already emit tuples per row; no re-tupling.
    return QueryResult(columns=names, rows=tuple(rows),
                       elapsed_seconds=elapsed)


def _supported(bound: BoundStatement) -> bool:
    """Shapes the batch kernels cover; everything else falls back."""
    return not bound.statement.explain


def _execute_group(ctx: _RequestContext, sql: str,
                   fallbacks: list[str]) -> QueryResult:
    """One group through the batch kernels, or ``database.execute``."""
    bound = ctx.database.bound_statement(sql)
    if not _supported(bound):
        fallbacks.append(sql)
        ctx.bump("legacy_scans", ctx.leaf_count(bound.where))
        ctx.bump("masks_computed", ctx.leaf_count(bound.where))
        return ctx.database.execute(sql)
    return _execute_statement(ctx, bound)


# ---------------------------------------------------------------------------
# Plan execution
# ---------------------------------------------------------------------------


#: Sentinel a group task returns for the NullAggregateError outcome
#: (aggregate over zero qualifying rows) so the expected case never
#: travels as an exception through the pool.
_NULL_RESULT = object()


def run_plan(plan: "ExecutionPlan", database: Database,
             sample_fraction: float | None = None,
             cache: "QueryResultCache | None" = None,
             ctx: _RequestContext | None = None,
             parallel: bool | None = None,
             ) -> dict["AggregateQuery", float | None]:
    """Answer every group of *plan* with request-shared work.

    Drop-in equivalent of the per-group loop in
    :meth:`~repro.execution.merging.ExecutionPlan.run` — same results
    (bit for bit, including TABLESAMPLE draws and NULL/zero-row
    normalisation), same result-cache interoperation, same span shape —
    but each distinct predicate mask and GROUP BY factorisation is
    computed once per request instead of once per group.

    Independent groups execute as tasks on the shared worker pool (and
    within each group the kernels scatter across morsels); pass
    ``parallel=False`` — or flip ``MUVE_PARALLEL=0`` — for the serial
    oracle.  The request deadline is polled per group and per morsel
    either way.  *ctx* lets one request share a context (mask cache,
    pool) across several plans; counters are recorded as per-plan
    deltas.
    """
    from repro.execution.merging import (
        _extract_group_results,
        _normalize,
        _with_sample,
    )
    if ctx is None:
        ctx = request_context(database, parallel=parallel)
    base = ctx.counters()
    fallbacks: list[str] = []
    results: dict["AggregateQuery", float | None] = {}
    with trace_span("executor.batch") as batch_span:
        batch_span.set_attribute("groups", len(plan.groups))
        batch_span.set_attribute("parallel", ctx.pool is not None)
        if ctx.pool is not None:
            batch_span.set_attribute("workers", ctx.pool.workers)

        def run_group(group):
            sql = group.sql
            if sample_fraction is not None and sample_fraction < 1.0:
                sql = _with_sample(sql, sample_fraction)
            with trace_span("executor.group") as span:
                span.set_attribute("queries", len(group.queries))
                span.set_attribute("merged", group.is_merged)
                span.set_attribute("estimated_cost",
                                   round(group.estimated_cost, 3))
                span.set_attribute("batch", True)
                executed = True
                try:
                    if cache is not None:
                        executed = False

                        def execute(text: str) -> QueryResult:
                            nonlocal executed
                            executed = True
                            return _execute_group(ctx, text, fallbacks)

                        outcome = cache.get_or_execute(sql, execute)
                        span.set_attribute(
                            "cache", "miss" if executed else "hit")
                    else:
                        outcome = _execute_group(ctx, sql, fallbacks)
                except NullAggregateError:
                    # Aggregate over zero qualifying rows (SQL NULL):
                    # report every member query as missing/zero.  Real
                    # execution failures propagate to the caller.
                    span.set_attribute("null_result", True)
                    return _NULL_RESULT
                if executed:
                    actual_ms = outcome.elapsed_seconds * 1000.0
                    span.set_attribute("actual_ms", round(actual_ms, 4))
                    if group.estimated_cost > 0:
                        span.set_attribute(
                            "ms_per_cost_unit",
                            round(actual_ms / group.estimated_cost, 6))
                return outcome

        if ctx.pool is not None and len(plan.groups) > 1:
            outcomes = ctx.pool.run_tasks(
                [lambda group=group: run_group(group)
                 for group in plan.groups],
                site="executor.group")
        else:
            deadline = current_deadline()
            outcomes = []
            for group in plan.groups:
                if deadline is not None:
                    deadline.check("executor.group")
                outcomes.append(run_group(group))
        for group, outcome in zip(plan.groups, outcomes):
            if outcome is _NULL_RESULT:
                for query in group.queries:
                    results[query] = _normalize(query, None)
            else:
                _extract_group_results(group, outcome, results)
        current = ctx.counters()
        delta = {key: current[key] - base[key] for key in current}
        batch_scans = delta["masks_computed"] + delta["sample_masks"]
        scans_saved = max(0, delta["legacy_scans"] - batch_scans)
        batch_span.set_attribute("masks_computed", delta["masks_computed"])
        batch_span.set_attribute("masks_reused", delta["masks_reused"])
        batch_span.set_attribute("scans_saved", scans_saved)
        batch_span.set_attribute("index_statements",
                                 delta["index_statements"])
        if fallbacks:
            batch_span.set_attribute("fallback_groups", len(fallbacks))
    _STATS.record(groups=len(plan.groups), fallbacks=len(fallbacks),
                  masks_computed=delta["masks_computed"],
                  masks_reused=delta["masks_reused"],
                  scans_saved=scans_saved,
                  index_statements=delta["index_statements"])
    registry = get_registry()
    registry.counter("batch_plans").inc()
    if delta["masks_reused"]:
        registry.counter("batch_masks_reused_total").inc(
            delta["masks_reused"])
    if scans_saved:
        registry.counter("batch_scans_saved_total").inc(scans_saved)
    return results


def plan_scan_counts(plan: "ExecutionPlan", database: Database,
                     sample_fraction: float | None = None,
                     ) -> tuple[int, int]:
    """``(legacy, batch)`` full-table mask builds this plan needs.

    The legacy count charges every group for each of its leaf predicates
    (plus one TABLESAMPLE draw when sampling); the batch count charges
    each *distinct* leaf once.  Used by the serving benchmark to report
    scans per request without instrumenting the hot path.
    """
    from repro.execution.merging import _with_sample
    legacy = 0
    distinct: set[tuple[str, BooleanExpr]] = set()
    samples = 0
    for group in plan.groups:
        sql = group.sql
        if sample_fraction is not None and sample_fraction < 1.0:
            sql = _with_sample(sql, sample_fraction)
            samples += 1
            legacy += 1
        bound = database.bound_statement(sql)
        legacy += _count_leaves(bound.where)
        table = bound.statement.table.lower()
        stack: list[BooleanExpr] = (
            [bound.where] if bound.where is not None else [])
        while stack:
            expr = stack.pop()
            if isinstance(expr, (And, Or)):
                stack.extend(expr.children)
            elif isinstance(expr, Not):
                stack.append(expr.child)
            else:
                distinct.add((table, expr))
    return legacy, len(distinct) + samples
