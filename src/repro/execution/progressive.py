"""Progressive presentation strategies (Section 8.2 and Figure 5).

Every strategy turns a planned multiplot into a sequence of
:class:`~repro.execution.engine.VisualizationUpdate` events:

* :class:`DefaultProcessing` — run everything (merged), emit one final
  visualization.
* :class:`IncrementalPlotting` — execute and emit plot by plot; users may
  see the correct result before the full multiplot exists.
* :class:`ApproximateProcessing` — run on a Bernoulli sample first (scaled
  estimates, emitted as approximate), then refine on the full data.  The
  fixed variants App-1%/App-5% pin the sample fraction; the dynamic
  variant (App-D) sizes the sample so the estimated sample-scan cost fits
  the interactivity threshold.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Iterator

from repro.core.model import Multiplot, Plot
from repro.errors import ExecutionError
from repro.execution.merging import plan_execution
from repro.observability import trace_span
from repro.sqldb.database import Database
from repro.sqldb.query import AggregateQuery
from repro.sqldb.sampling import scale_aggregate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.caching import QueryResultCache
    from repro.execution.engine import VisualizationUpdate


def _fill_values(multiplot: Multiplot,
                 results: dict[AggregateQuery, float | None],
                 only_plots: set[int] | None = None) -> Multiplot:
    """A copy of *multiplot* with bar values from *results*.

    ``only_plots`` restricts filling (and inclusion) to the given row-major
    plot indices — incremental plotting uses this to emit partial
    multiplots.
    """
    rows = []
    plot_index = 0
    for row in multiplot.rows:
        new_row = []
        for plot in row:
            if only_plots is not None and plot_index not in only_plots:
                plot_index += 1
                continue
            bars = tuple(bar.with_value(results.get(bar.query))
                         for bar in plot.bars)
            new_row.append(Plot(plot.template, bars))
            plot_index += 1
        rows.append(tuple(new_row))
    return Multiplot(tuple(rows))


def _plan_with_span(database: Database, queries: list[AggregateQuery],
                    merge: bool):
    """``plan_execution`` inside an ``executor.merge_plan`` span carrying
    the merge decision summary (group counts, estimated costs)."""
    with trace_span("executor.merge_plan") as span:
        plan = plan_execution(database, queries, merge=merge)
        span.set_attribute("queries", len(queries))
        span.set_attribute("groups", len(plan.groups))
        span.set_attribute("merged_groups",
                           sum(1 for g in plan.groups if g.is_merged))
        span.set_attribute("estimated_cost",
                           round(plan.estimated_cost, 3))
        return plan


class ProcessingStrategy:
    """Interface: yield visualization updates for a planned multiplot.

    Strategies are stateless per call (any instance may serve many threads
    at once); ``cache`` optionally short-circuits group execution through a
    shared :class:`~repro.caching.QueryResultCache`.
    """

    name = "abstract"

    def updates(self, database: Database, multiplot: Multiplot,
                merge: bool = True,
                cache: "QueryResultCache | None" = None,
                batch: bool | None = None,
                ) -> Iterator["VisualizationUpdate"]:
        raise NotImplementedError


class DefaultProcessing(ProcessingStrategy):
    """Process all queries, then show the finished multiplot once."""

    name = "default"

    def updates(self, database: Database, multiplot: Multiplot,
                merge: bool = True,
                cache: "QueryResultCache | None" = None,
                batch: bool | None = None,
                ) -> Iterator["VisualizationUpdate"]:
        from repro.execution.batch import request_context
        from repro.execution.engine import VisualizationUpdate
        start = time.perf_counter()
        queries = list(multiplot.displayed_queries())
        plan = _plan_with_span(database, queries, merge)
        ctx = request_context(database)
        # The span closes before the yield: an open span across a yield
        # would tear down in the consumer's context.
        with trace_span("executor.update", final=True) as span:
            results = plan.run(database, cache=cache, batch=batch,
                               request_ctx=ctx)
            update = VisualizationUpdate(
                elapsed_seconds=time.perf_counter() - start,
                multiplot=_fill_values(multiplot, results),
                final=True,
                approximate=False,
                description="default: all queries processed",
            )
            span.set_attribute("groups", len(plan.groups))
        yield update


class IncrementalPlotting(ProcessingStrategy):
    """Generate single plots sequentially, updating after each.

    ``order="probability"`` (the default) processes plots by decreasing
    covered probability mass, so the plot most likely to contain the
    correct result appears first — minimising expected F-Time.
    ``order="layout"`` keeps the multiplot's row-major order (what a
    naive implementation would do; kept for comparison).
    """

    def __init__(self, order: str = "probability") -> None:
        if order not in ("probability", "layout"):
            raise ExecutionError(
                f"unknown incremental plotting order {order!r}")
        self.order = order

    name = "inc-plot"

    def updates(self, database: Database, multiplot: Multiplot,
                merge: bool = True,
                cache: "QueryResultCache | None" = None,
                batch: bool | None = None,
                ) -> Iterator["VisualizationUpdate"]:
        from repro.execution.batch import request_context
        from repro.execution.engine import VisualizationUpdate
        start = time.perf_counter()
        plots = list(enumerate(multiplot.plots()))
        if self.order == "probability":
            plots.sort(key=lambda pair: -pair[1].probability_mass())
        results: dict[AggregateQuery, float | None] = {}
        shown: set[int] = set()
        # One request context for every per-plot plan: plots of one
        # multiplot share fixed predicates, so later plots reuse the
        # leaf masks (and factorisations) the first plot scanned.
        ctx = request_context(database)
        for step, (index, plot) in enumerate(plots):
            with trace_span("executor.update",
                            step=step + 1, of=len(plots)) as span:
                queries = [bar.query for bar in plot.bars
                           if bar.query not in results]
                if queries:
                    plan = _plan_with_span(database, queries, merge)
                    results.update(plan.run(database, cache=cache,
                                            batch=batch,
                                            request_ctx=ctx))
                span.set_attribute("new_queries", len(queries))
                shown.add(index)
                update = VisualizationUpdate(
                    elapsed_seconds=time.perf_counter() - start,
                    multiplot=_fill_values(multiplot, results, shown),
                    final=step == len(plots) - 1,
                    approximate=False,
                    description=(f"incremental: plot "
                                 f"{step + 1}/{len(plots)}"),
                )
            yield update
        if not plots:
            yield VisualizationUpdate(
                elapsed_seconds=time.perf_counter() - start,
                multiplot=multiplot,
                final=True,
                approximate=False,
                description="incremental: empty multiplot",
            )


class ApproximateProcessing(ProcessingStrategy):
    """Sample-first processing: approximate update, then the precise one.

    ``fraction=None`` activates the dynamic variant (App-D): the sample
    fraction is chosen so that the *estimated* scan effort fits
    ``target_seconds``, using a calibrated rows-per-second throughput for
    the engine (measured lazily on first use and cached per database).
    """

    def __init__(self, fraction: float | None = 0.01,
                 target_seconds: float = 0.5,
                 min_fraction: float = 0.001) -> None:
        if fraction is not None and not 0.0 < fraction <= 1.0:
            raise ExecutionError(
                f"sample fraction {fraction} outside (0, 1]")
        self.fraction = fraction
        self.target_seconds = target_seconds
        self.min_fraction = min_fraction

    @property
    def name(self) -> str:
        if self.fraction is None:
            return "app-d"
        return f"app-{self.fraction * 100:g}%"

    _throughput_cache: dict[int, float] = {}
    _throughput_lock = threading.Lock()

    def _dynamic_fraction(self, database: Database,
                          queries: list[AggregateQuery]) -> float:
        """Pick the largest fraction whose estimated runtime fits the
        interactivity target."""
        if not queries:
            return 1.0
        table = database.table(queries[0].table)
        throughput = self._calibrate(database, table)
        budget_rows = throughput * self.target_seconds
        scanned_rows = float(table.num_rows) * len(
            plan_execution(database, queries).groups)
        if scanned_rows <= budget_rows:
            return 1.0
        return max(self.min_fraction, budget_rows / scanned_rows)

    def _calibrate(self, database: Database, table) -> float:
        """Rows/second of a filtered scan on this engine (cached).

        The measurement is serialised process-wide so concurrent App-D
        requests against one database calibrate once and agree on the
        throughput figure afterwards.
        """
        key = id(database)
        cached = self._throughput_cache.get(key)
        if cached is not None:
            return cached
        probe_rows = min(table.num_rows, 50_000)
        if probe_rows == 0:
            return 1e6
        with self._throughput_lock:
            cached = self._throughput_cache.get(key)
            if cached is not None:
                return cached
            start = time.perf_counter()
            percent = 100.0 * probe_rows / max(table.num_rows, 1)
            database.execute(
                f"SELECT COUNT(*) FROM {table.schema.name} "
                f"TABLESAMPLE BERNOULLI ({percent:.4f})")
            elapsed = max(time.perf_counter() - start, 1e-6)
            throughput = probe_rows / elapsed
            self._throughput_cache[key] = throughput
        return throughput

    def updates(self, database: Database, multiplot: Multiplot,
                merge: bool = True,
                cache: "QueryResultCache | None" = None,
                batch: bool | None = None,
                ) -> Iterator["VisualizationUpdate"]:
        from repro.execution.batch import request_context
        from repro.execution.engine import VisualizationUpdate
        start = time.perf_counter()
        queries = list(multiplot.displayed_queries())
        plan = _plan_with_span(database, queries, merge)
        if self.fraction is None:
            fraction = self._dynamic_fraction(database, queries)
        else:
            fraction = self.fraction

        # The sampled and the precise pass share one request context:
        # the WHERE masks are identical (sampling ANDs a Bernoulli draw
        # on top), so the refinement pass reuses every leaf scan.
        ctx = request_context(database)
        if fraction < 1.0:
            with trace_span("executor.update", approximate=True) as span:
                span.set_attribute("sample_fraction", round(fraction, 6))
                raw = plan.run(database, sample_fraction=fraction,
                               cache=cache, batch=batch, request_ctx=ctx)
                scaled = {
                    query: (None if value is None else
                            scale_aggregate(query.aggregate.func, value,
                                            fraction))
                    for query, value in raw.items()
                }
                update = VisualizationUpdate(
                    elapsed_seconds=time.perf_counter() - start,
                    multiplot=_fill_values(multiplot, scaled),
                    final=False,
                    approximate=True,
                    description=(f"approximate: "
                                 f"{fraction * 100:.2f}% sample"),
                )
            yield update
        with trace_span("executor.update", final=True) as span:
            results = plan.run(database, cache=cache, batch=batch,
                               request_ctx=ctx)
            update = VisualizationUpdate(
                elapsed_seconds=time.perf_counter() - start,
                multiplot=_fill_values(multiplot, results),
                final=True,
                approximate=False,
                description="precise results",
            )
            span.set_attribute("groups", len(plan.groups))
        yield update
