"""Execution orchestration: planned multiplot -> visualization updates."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.core.ilp import IlpSolver, incremental_solve
from repro.core.model import Multiplot
from repro.core.problem import MultiplotSelectionProblem
from repro.execution.progressive import (
    DefaultProcessing,
    ProcessingStrategy,
    _fill_values,
)
from repro.execution.merging import plan_execution
from repro.observability import trace_span
from repro.sqldb.database import Database
from repro.sqldb.query import AggregateQuery

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.caching import QueryResultCache


@dataclass(frozen=True)
class VisualizationUpdate:
    """One visualization state shown to the user while processing runs."""

    elapsed_seconds: float
    multiplot: Multiplot
    final: bool
    approximate: bool
    description: str

    def value_of(self, query: AggregateQuery) -> float | None:
        bar = self.multiplot.bar_for(query)
        return None if bar is None else bar.value

    def shows_result_for(self, query: AggregateQuery) -> bool:
        """True when the update displays a (possibly approximate) value for
        *query* — the event F-Time measures in Figure 11."""
        bar = self.multiplot.bar_for(query)
        return bar is not None and bar.value is not None


class MuveExecutor:
    """Runs the queries behind a planned multiplot with a chosen strategy.

    One executor instance may serve many threads: it holds no per-request
    state, and the optional ``result_cache`` (a thread-safe
    :class:`~repro.caching.QueryResultCache`) lets concurrent requests
    share the results of identical merged-group statements.
    """

    def __init__(self, database: Database, merge: bool = True,
                 result_cache: "QueryResultCache | None" = None,
                 batch: bool | None = None) -> None:
        """``batch=None`` (the default) lets each plan follow the global
        batch-executor flag; ``True``/``False`` pins the choice for every
        plan this executor runs (tests and A/B benchmarks use this)."""
        self._database = database
        self._merge = merge
        self._batch = batch
        self.result_cache = result_cache

    def run(self, multiplot: Multiplot,
            strategy: ProcessingStrategy | None = None,
            ) -> list[VisualizationUpdate]:
        """Execute and collect all updates (the common non-streaming path).

        The whole execution runs inside one ``executor.run`` span (the
        streaming path is left unspanned: a span may not stay open
        across ``yield`` without risking cross-context teardown)."""
        strategy = strategy or DefaultProcessing()
        with trace_span("executor.run") as span:
            span.set_attribute("strategy", strategy.name)
            updates = list(self.stream(multiplot, strategy))
            span.set_attribute("updates", len(updates))
            span.set_attribute(
                "queries", len(list(multiplot.displayed_queries())))
            return updates

    def stream(self, multiplot: Multiplot,
               strategy: ProcessingStrategy | None = None,
               ) -> Iterator[VisualizationUpdate]:
        """Yield updates as the strategy produces them."""
        strategy = strategy or DefaultProcessing()
        yield from strategy.updates(self._database, multiplot,
                                    merge=self._merge,
                                    cache=self.result_cache,
                                    batch=self._batch)

    def run_incremental_ilp(self, problem: MultiplotSelectionProblem,
                            solver: IlpSolver | None = None,
                            initial_timeout: float = 0.0625,
                            growth_factor: float = 2.0,
                            total_budget: float = 4.0,
                            ) -> list[VisualizationUpdate]:
        """The ILP-Inc method of Figure 9: re-optimize under exponentially
        growing timeouts, executing and re-rendering after every step.

        Each improved multiplot is executed in full (results for queries
        seen in earlier steps are cached), so later steps mostly pay
        optimisation time.
        """
        from repro.execution.batch import request_context
        with trace_span("executor.ilp_inc") as span:
            start = time.perf_counter()
            updates: list[VisualizationUpdate] = []
            cache: dict[AggregateQuery, float | None] = {}
            # All per-step plans of one incremental solve share one
            # request context (mask cache + pool): successive steps
            # mostly re-select queries over the same predicates.
            ctx = request_context(self._database)
            steps = list(incremental_solve(
                problem, solver=solver, initial_timeout=initial_timeout,
                growth_factor=growth_factor, total_budget=total_budget))
            for index, step in enumerate(steps):
                if not step.improved and index < len(steps) - 1:
                    continue
                multiplot = step.solution.multiplot
                missing = [q for q in multiplot.displayed_queries()
                           if q not in cache]
                if missing:
                    plan = plan_execution(self._database, missing,
                                          merge=self._merge)
                    cache.update(plan.run(self._database,
                                          cache=self.result_cache,
                                          batch=self._batch,
                                          request_ctx=ctx))
                updates.append(VisualizationUpdate(
                    elapsed_seconds=time.perf_counter() - start,
                    multiplot=_fill_values(multiplot, cache),
                    final=index == len(steps) - 1,
                    approximate=False,
                    description=(f"ilp-inc step {step.step} "
                                 f"(timeout {step.timeout_seconds * 1000:.0f} ms)"),
                ))
            span.set_attribute("steps", len(steps))
            span.set_attribute("updates", len(updates))
            return updates
