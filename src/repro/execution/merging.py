"""Query merging (Section 8.1).

Candidate queries are near-duplicates of each other, so MUVE shares work
between them: queries that differ only in one predicate's constant become a
single ``IN`` + ``GROUP BY`` query; queries that differ only in the
aggregate (function or column) share one scan with several output
aggregates.  The merge decision is cost-based, using the engine's optimizer
estimates ("we use the cost model of the Postgres optimizer"): a group is
merged only when the merged plan is estimated cheaper than running its
members separately.

The grouping structure is exactly the template structure of
:mod:`repro.nlq.templates`: queries sharing a ``pred_value`` template merge
by IN/GROUP BY, queries sharing an ``agg_func``/``agg_column`` template
merge by multi-aggregate select.  ``pred_column`` templates do not merge
(their members filter different columns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import ExecutionError, NullAggregateError, TransientError
from repro.observability import trace_span
from repro.resilience import (
    current_deadline,
    exception_reason,
    record_degradation,
)
from repro.testing.faults import fault_point

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.caching import QueryResultCache
from repro.nlq.templates import QueryTemplate, templates_of
from repro.sqldb.database import Database
from repro.sqldb.expressions import format_literal
from repro.sqldb.query import AggregateQuery

_MERGEABLE_KINDS = ("pred_value", "agg_func", "agg_column")


@dataclass(frozen=True)
class MergedGroup:
    """One execution unit: either a merged query or a singleton."""

    sql: str
    queries: tuple[AggregateQuery, ...]
    template: QueryTemplate | None
    estimated_cost: float

    @property
    def is_merged(self) -> bool:
        return len(self.queries) > 1


@dataclass(frozen=True)
class ExecutionPlan:
    """All groups needed to answer a set of candidate queries."""

    groups: tuple[MergedGroup, ...]
    estimated_cost: float
    unmerged_cost: float = field(default=0.0)

    def run(self, database: Database,
            sample_fraction: float | None = None,
            cache: "QueryResultCache | None" = None,
            batch: bool | None = None,
            request_ctx=None,
            parallel: bool | None = None,
            ) -> dict[AggregateQuery, float | None]:
        """Execute every group; returns per-query results.

        A query whose group yields no row for it (e.g. the predicate value
        does not occur in the data) maps to ``0.0`` for COUNT/SUM and
        ``None`` (SQL NULL) otherwise.  ``sample_fraction`` appends a
        ``TABLESAMPLE`` clause to every group for approximate processing.
        ``cache`` short-circuits group execution on normalised-SQL hits
        (sampled statements carry their fraction in the SQL text, so exact
        and approximate runs never share an entry).

        ``batch`` routes the whole plan through the one-pass batch
        executor (:mod:`repro.execution.batch`), which shares predicate
        masks and GROUP BY factorisations across groups — and executes
        groups and morsels on the shared worker pool — and returns
        results identical to this per-group loop.  ``None`` (the default)
        follows the global flag (:func:`repro.execution.batch
        .batch_enabled`); the batch path is skipped when the database
        simulates page I/O, whose per-statement sleeps model exactly the
        repeated scans the batch executor elides.

        ``request_ctx`` (from :func:`repro.execution.batch
        .request_context`) shares one mask cache and pool across several
        plans of the same request — the progressive strategies run one
        plan per emitted update; ``parallel`` overrides the global
        parallel flag for this plan (the benchmark's A/B switch).
        """
        from repro.execution import batch as batch_executor
        if batch is None:
            batch = batch_executor.batch_enabled()
        if batch and database.io_millis_per_page == 0.0:
            try:
                fault_point("executor.batch")
                deadline = current_deadline()
                if deadline is not None:
                    deadline.check("executor.batch")
                return batch_executor.run_plan(
                    self, database, sample_fraction=sample_fraction,
                    cache=cache, ctx=request_ctx, parallel=parallel)
            except TransientError as exc:
                # batch→per-group rung: a transient batch failure falls
                # back to the legacy loop, which computes bit-identical
                # results one group at a time.  Deadline exhaustion is
                # NOT handled here — per-group is the *slower* path, so
                # the caller must shrink the multiplot instead.
                record_degradation("executor", "batch_to_per_group",
                                   exception_reason(exc))
        results: dict[AggregateQuery, float | None] = {}
        for group in self.groups:
            fault_point("executor.group")
            deadline = current_deadline()
            if deadline is not None:
                deadline.check("executor.group")
            sql = group.sql
            if sample_fraction is not None and sample_fraction < 1.0:
                sql = _with_sample(sql, sample_fraction)
            with trace_span("executor.group") as span:
                span.set_attribute("queries", len(group.queries))
                span.set_attribute("merged", group.is_merged)
                span.set_attribute("estimated_cost",
                                   round(group.estimated_cost, 3))
                executed = True
                try:
                    if cache is not None:
                        executed = False

                        def execute(text: str):
                            nonlocal executed
                            executed = True
                            return database.execute(text)

                        outcome = cache.get_or_execute(sql, execute)
                        span.set_attribute(
                            "cache", "miss" if executed else "hit")
                    else:
                        outcome = database.execute(sql)
                except NullAggregateError:
                    # Aggregate over zero qualifying rows (SQL NULL):
                    # report every member query as missing/zero.  Other
                    # ExecutionErrors are genuine failures (bad SQL, a
                    # dropped table, an unsupported aggregate) and
                    # propagate to the caller instead of being silently
                    # folded into "no data".
                    span.set_attribute("null_result", True)
                    for query in group.queries:
                        results[query] = _normalize(query, None)
                    continue
                if executed:
                    # Cost-model estimation error: the optimizer's
                    # EXPLAIN estimate (abstract units) vs. the
                    # measured runtime.  Cache hits skip this — their
                    # elapsed time belongs to the original execution.
                    actual_ms = outcome.elapsed_seconds * 1000.0
                    span.set_attribute("actual_ms", round(actual_ms, 4))
                    if group.estimated_cost > 0:
                        span.set_attribute(
                            "ms_per_cost_unit",
                            round(actual_ms / group.estimated_cost, 6))
            _extract_group_results(group, outcome, results)
        return results


def candidate_processing_groups(database: Database, candidates):
    """Processing groups for the processing-cost-aware ILP (Section 8.1).

    One :class:`~repro.core.ilp.ProcessingGroup` per (merged) execution
    unit of the candidates' queries, costed by the optimizer.  Pass the
    result to :meth:`IlpSolver.solve` (or a planner with a positive
    ``processing_weight``) to let planning trade disambiguation cost
    against processing cost.
    """
    from repro.core.ilp import ProcessingGroup
    queries = [c.query for c in candidates]
    index_of = {c.query: i for i, c in enumerate(candidates)}
    plan = plan_execution(database, queries, merge=True)
    return [
        ProcessingGroup(
            cost=group.estimated_cost,
            candidate_indices=frozenset(index_of[q]
                                        for q in group.queries))
        for group in plan.groups
    ]


def plan_execution(database: Database,
                   queries: list[AggregateQuery],
                   merge: bool = True) -> ExecutionPlan:
    """Group *queries* into (merged) execution units.

    With ``merge=False`` every query runs separately (the Figure 7
    baseline).  Otherwise groups are formed greedily largest-first over the
    mergeable templates and each group is kept merged only if its estimated
    cost undercuts the sum of its members' standalone costs.
    """
    unique = list(dict.fromkeys(queries))
    standalone_cost = {q: database.estimated_cost(q) for q in unique}
    unmerged_total = sum(standalone_cost.values())
    if not merge:
        groups = tuple(
            MergedGroup(q.to_sql(), (q,), None, standalone_cost[q])
            for q in unique)
        return ExecutionPlan(groups, unmerged_total, unmerged_total)

    by_template: dict[QueryTemplate, list[AggregateQuery]] = {}
    for query in unique:
        for template in templates_of(query):
            if template.kind in _MERGEABLE_KINDS:
                by_template.setdefault(template, []).append(query)

    assigned: set[AggregateQuery] = set()
    groups: list[MergedGroup] = []
    # Largest groups first: they share the most work.
    for template, members in sorted(
            by_template.items(),
            key=lambda item: (-len(item[1]), item[0].title())):
        open_members = [q for q in members if q not in assigned]
        if len(open_members) < 2:
            continue
        sql = _merged_sql(template, open_members)
        merged_cost = database.estimated_cost(sql)
        separate_cost = sum(standalone_cost[q] for q in open_members)
        if merged_cost >= separate_cost:
            continue  # optimizer says merging does not pay off
        groups.append(MergedGroup(sql, tuple(open_members), template,
                                  merged_cost))
        assigned.update(open_members)
    for query in unique:
        if query not in assigned:
            groups.append(MergedGroup(query.to_sql(), (query,), None,
                                      standalone_cost[query]))
    total = sum(group.estimated_cost for group in groups)
    return ExecutionPlan(tuple(groups), total, unmerged_total)


# ---------------------------------------------------------------------------
# SQL construction per template kind
# ---------------------------------------------------------------------------


def _merged_sql(template: QueryTemplate,
                members: list[AggregateQuery]) -> str:
    if template.kind == "pred_value":
        values = sorted({m.predicate_on(str(template.anchor)).value
                         for m in members}, key=repr)
        in_list = ", ".join(format_literal(v) for v in values)
        conditions = [p.to_sql() for p in template.fixed_predicates]
        conditions.append(f"{template.anchor} IN ({in_list})")
        assert template.agg_func is not None
        agg = members[0].aggregate.to_sql()
        where = " AND ".join(sorted(conditions))
        return (f"SELECT {template.anchor}, {agg} FROM {template.table} "
                f"WHERE {where} GROUP BY {template.anchor}")
    # agg_func / agg_column: several aggregates over one shared filter.
    aggregates = sorted({m.aggregate.to_sql() for m in members})
    select_list = ", ".join(aggregates)
    sql = f"SELECT {select_list} FROM {template.table}"
    if template.fixed_predicates:
        where = " AND ".join(sorted(p.to_sql()
                                    for p in template.fixed_predicates))
        sql += f" WHERE {where}"
    return sql


def _with_sample(sql: str, fraction: float) -> str:
    """Insert a TABLESAMPLE clause after the FROM table reference."""
    upper = sql.upper()
    from_at = upper.index(" FROM ")
    rest = sql[from_at + 6:]
    parts = rest.split(" ", 1)
    table = parts[0]
    tail = f" {parts[1]}" if len(parts) > 1 else ""
    clause = f" TABLESAMPLE BERNOULLI ({fraction * 100:.6f})"
    return sql[:from_at + 6] + table + clause + tail


def _extract_group_results(group: MergedGroup, outcome,
                           results: dict[AggregateQuery, float | None],
                           ) -> None:
    template = group.template
    if template is None or not group.is_merged:
        query = group.queries[0]
        value = outcome.rows[0][0] if outcome.rows else None
        results[query] = _normalize(query, value)
        return
    if template.kind == "pred_value":
        anchor = str(template.anchor)
        key_index = outcome.column_index(anchor)
        value_index = 1 - key_index if len(outcome.columns) == 2 else 1
        by_key: dict[Any, float] = {
            row[key_index]: row[value_index] for row in outcome.rows}
        for query in group.queries:
            predicate = query.predicate_on(anchor)
            results[query] = _normalize(query,
                                        by_key.get(predicate.value))
        return
    # Multi-aggregate select: one row, one column per aggregate.
    if not outcome.rows:
        raise ExecutionError(
            f"merged query returned no row: {group.sql!r}")
    row = outcome.rows[0]
    for query in group.queries:
        index = outcome.column_index(query.aggregate.to_sql())
        results[query] = _normalize(query, row[index])


def _normalize(query: AggregateQuery,
               value: float | None) -> float | None:
    """Missing groups: COUNT/SUM over zero rows is 0, others are NULL."""
    if value is not None:
        return float(value)
    func = query.aggregate.func.value
    if func in ("count", "sum"):
        return 0.0
    return None
