"""Query processing for multiplots: merging and progressive presentation.

MUVE executes many similar queries per voice input.  Section 8.1 merges
them (equality predicates on one column become an ``IN`` condition plus
``GROUP BY``; several aggregates over the same filter share one scan) when
the optimizer's cost model says the merged plan is cheaper.  Section 8.2
reduces *perceived* latency instead: incremental plotting emits the
multiplot plot by plot, approximate processing shows scaled sample results
first and refines in the background.
"""

from repro.execution.batch import (
    batch_enabled,
    batch_stats,
    request_context,
    reset_batch_stats,
    set_batch_enabled,
)
from repro.execution.engine import MuveExecutor, VisualizationUpdate
from repro.execution.parallel import (
    WorkerPool,
    configure_pool,
    get_pool,
    parallel_enabled,
    pool_stats,
    register_parallel_metrics,
    reset_parallel_stats,
    reset_pool,
    set_parallel_enabled,
    warm_database,
)
from repro.execution.merging import (
    ExecutionPlan,
    MergedGroup,
    plan_execution,
)
from repro.execution.progressive import (
    ApproximateProcessing,
    DefaultProcessing,
    IncrementalPlotting,
    ProcessingStrategy,
)

__all__ = [
    "ApproximateProcessing",
    "DefaultProcessing",
    "ExecutionPlan",
    "IncrementalPlotting",
    "MergedGroup",
    "MuveExecutor",
    "ProcessingStrategy",
    "VisualizationUpdate",
    "WorkerPool",
    "batch_enabled",
    "batch_stats",
    "configure_pool",
    "get_pool",
    "parallel_enabled",
    "plan_execution",
    "pool_stats",
    "register_parallel_metrics",
    "request_context",
    "reset_batch_stats",
    "reset_parallel_stats",
    "reset_pool",
    "set_batch_enabled",
    "set_parallel_enabled",
    "warm_database",
]
