"""Exception hierarchy shared across the MUVE reproduction.

Every package raises subclasses of :class:`ReproError` so callers can catch
library failures without trapping unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SqlError(ReproError):
    """Base class for errors raised by the ``repro.sqldb`` engine."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class CatalogError(SqlError):
    """A referenced table or column does not exist, or a definition clashes."""


class TypeMismatchError(SqlError):
    """An expression combines operand types that are not compatible."""


class ExecutionError(SqlError):
    """A query failed while being evaluated."""


class NullAggregateError(ExecutionError):
    """An aggregate over zero qualifying rows has no value (SQL NULL).

    This is not a failure of the engine but a data condition: MUVE's
    execution plans report the affected query as missing/zero instead of
    erroring out.  Catching this subclass (rather than bare
    :class:`ExecutionError`) lets callers distinguish "empty result" from
    genuine execution bugs like a bad column reference.
    """


class PlanningError(ReproError):
    """Visualization planning failed (infeasible instance, bad dimensions)."""


class SolverError(ReproError):
    """A MILP backend failed to produce a usable solution."""


class SolverTimeout(SolverError):
    """The solver hit its deadline.

    The best incumbent found so far, if any, is attached so callers can
    still display a (possibly suboptimal) multiplot, mirroring the paper's
    behaviour under ILP timeouts.
    """

    def __init__(self, message: str, incumbent: object | None = None) -> None:
        super().__init__(message)
        self.incumbent = incumbent


class CandidateGenerationError(ReproError):
    """Text-to-multi-SQL could not derive candidate queries."""


class VisualizationError(ReproError):
    """A multiplot could not be rendered."""


class DeadlineExceeded(ReproError):
    """A per-request deadline expired before the request finished.

    Raised by :meth:`repro.resilience.Deadline.check` at the named
    pipeline site.  Stages that can degrade catch this and fall down the
    degradation ladder (see DESIGN.md, "Resilience"); it only escapes to
    the caller when even the cheapest degraded form of the request could
    not be produced.
    """

    def __init__(self, message: str, site: str = "") -> None:
        self.site = site
        super().__init__(message)


class TransientError(ReproError):
    """A failure that is expected to succeed if simply retried.

    The marker class the bounded retry policy
    (:func:`repro.resilience.retry_call`) keys on: only transient errors
    are retried, everything else propagates immediately.
    """


class OverloadedError(ReproError):
    """The server shed this request because too many are in flight.

    Maps to HTTP 429 with a ``Retry-After`` header (never 400/500): the
    request was not malformed and nothing is broken — the caller should
    back off and retry.
    """

    def __init__(self, message: str,
                 retry_after_seconds: float = 1.0) -> None:
        self.retry_after_seconds = retry_after_seconds
        super().__init__(message)
