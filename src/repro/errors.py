"""Exception hierarchy shared across the MUVE reproduction.

Every package raises subclasses of :class:`ReproError` so callers can catch
library failures without trapping unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SqlError(ReproError):
    """Base class for errors raised by the ``repro.sqldb`` engine."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class CatalogError(SqlError):
    """A referenced table or column does not exist, or a definition clashes."""


class TypeMismatchError(SqlError):
    """An expression combines operand types that are not compatible."""


class ExecutionError(SqlError):
    """A query failed while being evaluated."""


class NullAggregateError(ExecutionError):
    """An aggregate over zero qualifying rows has no value (SQL NULL).

    This is not a failure of the engine but a data condition: MUVE's
    execution plans report the affected query as missing/zero instead of
    erroring out.  Catching this subclass (rather than bare
    :class:`ExecutionError`) lets callers distinguish "empty result" from
    genuine execution bugs like a bad column reference.
    """


class PlanningError(ReproError):
    """Visualization planning failed (infeasible instance, bad dimensions)."""


class SolverError(ReproError):
    """A MILP backend failed to produce a usable solution."""


class SolverTimeout(SolverError):
    """The solver hit its deadline.

    The best incumbent found so far, if any, is attached so callers can
    still display a (possibly suboptimal) multiplot, mirroring the paper's
    behaviour under ILP timeouts.
    """

    def __init__(self, message: str, incumbent: object | None = None) -> None:
        super().__init__(message)
        self.incumbent = incumbent


class CandidateGenerationError(ReproError):
    """Text-to-multi-SQL could not derive candidate queries."""


class VisualizationError(ReproError):
    """A multiplot could not be rendered."""
