"""Synthetic datasets shaped like the paper's four evaluation datasets.

The paper evaluates on (1) advertisement contacts from an industry partner,
(2) NYC Department of Buildings job filings, (3) NYC 311 service requests
and (4) the ASA flight-delay data (10 GB).  None of those exact files ship
with this repository (the first is proprietary; the others are large
downloads), so :mod:`repro.datasets.generators` produces seeded synthetic
tables with the same *shape*: several categorical text columns with
Zipf-distributed, phonetically confusable values, plus numeric measure
columns.  Experiment outcomes depend on that shape — which strings can be
confused, how selective predicates are, how row count scales — not on the
concrete records.
"""

from repro.datasets.generators import (
    DATASET_GENERATORS,
    make_ads_table,
    make_dob_table,
    make_flights_table,
    make_nyc311_table,
)
from repro.datasets.workload import WorkloadGenerator

__all__ = [
    "DATASET_GENERATORS",
    "WorkloadGenerator",
    "make_ads_table",
    "make_dob_table",
    "make_flights_table",
    "make_nyc311_table",
]
