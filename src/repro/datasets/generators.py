"""Seeded generators for the four evaluation tables.

Each generator returns a :class:`~repro.sqldb.table.Table`.  Categorical
columns draw from fixed vocabularies containing phonetically confusable
entries (e.g. "Brooklyn"/"Bronx", "Queens"/"Kings") with Zipf-like skew;
numeric columns draw from simple parametric distributions.  All randomness
flows from the caller's seed so every experiment is reproducible.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.sqldb.schema import ColumnSchema, TableSchema
from repro.sqldb.table import Table
from repro.sqldb.types import DataType


def _zipf_choice(rng: np.random.Generator, values: Sequence[str],
                 size: int, skew: float = 1.1) -> np.ndarray:
    """Draw *size* values with Zipf-like rank frequencies (rank^-skew)."""
    ranks = np.arange(1, len(values) + 1, dtype=float)
    weights = ranks ** -skew
    weights /= weights.sum()
    indices = rng.choice(len(values), size=size, p=weights)
    out = np.empty(size, dtype=object)
    for i, idx in enumerate(indices):
        out[i] = values[idx]
    return out


# ---------------------------------------------------------------------------
# Vocabularies. Deliberately include phonetically close pairs, which is what
# makes the candidate generator produce plausible confusions.
# ---------------------------------------------------------------------------

_BOROUGHS = ("Brooklyn", "Bronx", "Manhattan", "Queens", "Staten Island")

_COMPLAINTS = (
    "Noise", "Nose Bleeding Hydrant", "Heating", "Heating Gas", "Water Leak",
    "Water Lake", "Street Condition", "Street Light Condition",
    "Blocked Driveway", "Blocked Bike Lane", "Illegal Parking",
    "Illegal Posting", "Rodent", "Graffiti", "Sewer", "Sower Backup",
    "Dirty Conditions", "Derelict Vehicle", "Taxi Complaint",
    "Noise Residential",
)

_AGENCIES = ("NYPD", "HPD", "DOT", "DEP", "DSNY", "DOB", "DPR", "DOHMH")

_STATUSES = ("Closed", "Open", "Pending", "Assigned", "In Progress")

_JOB_TYPES = ("Alteration", "Alternation", "New Building", "Demolition",
              "Plumbing", "Planning", "Sign", "Subdivision", "Scaffold",
              "Electrical")

_PERMIT_STATUSES = ("Issued", "In Process", "Re-Issued", "Revoked",
                    "Initial", "Renewed")

_CHANNELS = ("Email", "Phone", "Social", "Search", "Display", "Affiliate",
             "Radio", "Video")

_REGIONS = ("Northeast", "Northwest", "Southeast", "Southwest", "Midwest",
            "Mountain", "Pacific", "Plains")

_INDUSTRIES = ("Retail", "Real Estate", "Finance", "Fitness", "Healthcare",
               "Hardware", "Software", "Education", "Energy", "Insurance")

_CARRIERS = ("Delta", "Delter Air", "United", "Unified Express", "American",
             "Americana", "Southwest", "SkyWest", "JetBlue", "Alaska",
             "Allegiant", "Frontier", "Spirit", "Hawaiian")

_AIRPORTS = ("Atlanta", "Austin", "Boston", "Buffalo", "Charlotte",
             "Chicago", "Dallas", "Denver", "Detroit", "Houston",
             "Las Vegas", "Los Angeles", "Memphis", "Miami", "Nashville",
             "Newark", "New York", "Oakland", "Orlando", "Phoenix",
             "Pittsburgh", "Portland", "Sacramento", "San Diego",
             "San Francisco", "San Jose", "Seattle", "Tampa")

_MONTHS = ("January", "February", "March", "April", "May", "June", "July",
           "August", "September", "October", "November", "December")


def make_nyc311_table(num_rows: int = 20_000, seed: int = 0,
                      name: str = "nyc311") -> Table:
    """NYC 311 service requests: complaint/agency/borough/status + measures."""
    rng = np.random.default_rng(seed)
    schema = TableSchema(name, (
        ColumnSchema("complaint_type", DataType.TEXT),
        ColumnSchema("agency", DataType.TEXT),
        ColumnSchema("borough", DataType.TEXT),
        ColumnSchema("status", DataType.TEXT),
        ColumnSchema("resolution_hours", DataType.FLOAT),
        ColumnSchema("num_calls", DataType.INT),
    ))
    columns = {
        "complaint_type": _zipf_choice(rng, _COMPLAINTS, num_rows),
        "agency": _zipf_choice(rng, _AGENCIES, num_rows),
        "borough": _zipf_choice(rng, _BOROUGHS, num_rows, skew=0.8),
        "status": _zipf_choice(rng, _STATUSES, num_rows, skew=1.4),
        "resolution_hours": rng.lognormal(mean=3.0, sigma=1.0,
                                          size=num_rows),
        "num_calls": rng.poisson(lam=2.0, size=num_rows) + 1,
    }
    return Table(schema, columns)


def make_dob_table(num_rows: int = 30_000, seed: int = 1,
                   name: str = "dob") -> Table:
    """DOB job application filings: job/permit/borough + cost measures."""
    rng = np.random.default_rng(seed)
    schema = TableSchema(name, (
        ColumnSchema("borough", DataType.TEXT),
        ColumnSchema("job_type", DataType.TEXT),
        ColumnSchema("permit_status", DataType.TEXT),
        ColumnSchema("existing_stories", DataType.INT),
        ColumnSchema("proposed_stories", DataType.INT),
        ColumnSchema("initial_cost", DataType.FLOAT),
    ))
    existing = rng.integers(1, 40, size=num_rows)
    columns = {
        "borough": _zipf_choice(rng, _BOROUGHS, num_rows, skew=0.7),
        "job_type": _zipf_choice(rng, _JOB_TYPES, num_rows),
        "permit_status": _zipf_choice(rng, _PERMIT_STATUSES, num_rows),
        "existing_stories": existing,
        "proposed_stories": existing + rng.integers(0, 5, size=num_rows),
        "initial_cost": rng.lognormal(mean=10.5, sigma=1.5, size=num_rows),
    }
    return Table(schema, columns)


def make_ads_table(num_rows: int = 10_000, seed: int = 2,
                   name: str = "ads") -> Table:
    """Advertisement contacts (industry-partner stand-in)."""
    rng = np.random.default_rng(seed)
    schema = TableSchema(name, (
        ColumnSchema("channel", DataType.TEXT),
        ColumnSchema("region", DataType.TEXT),
        ColumnSchema("industry", DataType.TEXT),
        ColumnSchema("status", DataType.TEXT),
        ColumnSchema("budget", DataType.FLOAT),
        ColumnSchema("clicks", DataType.INT),
        ColumnSchema("impressions", DataType.INT),
    ))
    clicks = rng.poisson(lam=120.0, size=num_rows)
    columns = {
        "channel": _zipf_choice(rng, _CHANNELS, num_rows),
        "region": _zipf_choice(rng, _REGIONS, num_rows, skew=0.6),
        "industry": _zipf_choice(rng, _INDUSTRIES, num_rows),
        "status": _zipf_choice(rng, _STATUSES, num_rows, skew=1.3),
        "budget": rng.lognormal(mean=7.0, sigma=1.0, size=num_rows),
        "clicks": clicks,
        "impressions": clicks * rng.integers(20, 200, size=num_rows),
    }
    return Table(schema, columns)


def make_flights_table(num_rows: int = 100_000, seed: int = 3,
                       name: str = "flights") -> Table:
    """Flight delays (ASA Data Expo stand-in) — the 'large' dataset.

    The paper's copy is 10 GB; we default to 100k rows and let the scaling
    experiments (Figures 9-11) grow/shrink ``num_rows`` to sweep data size.
    """
    rng = np.random.default_rng(seed)
    schema = TableSchema(name, (
        ColumnSchema("carrier", DataType.TEXT),
        ColumnSchema("origin", DataType.TEXT),
        ColumnSchema("dest", DataType.TEXT),
        ColumnSchema("month", DataType.TEXT),
        ColumnSchema("dep_delay", DataType.FLOAT),
        ColumnSchema("arr_delay", DataType.FLOAT),
        ColumnSchema("distance", DataType.FLOAT),
        ColumnSchema("cancelled", DataType.INT),
    ))
    dep_delay = rng.gumbel(loc=5.0, scale=20.0, size=num_rows)
    columns = {
        "carrier": _zipf_choice(rng, _CARRIERS, num_rows),
        "origin": _zipf_choice(rng, _AIRPORTS, num_rows, skew=0.9),
        "dest": _zipf_choice(rng, _AIRPORTS, num_rows, skew=0.9),
        "month": _zipf_choice(rng, _MONTHS, num_rows, skew=0.2),
        "dep_delay": dep_delay,
        "arr_delay": dep_delay + rng.normal(0.0, 15.0, size=num_rows),
        "distance": rng.lognormal(mean=6.5, sigma=0.6, size=num_rows),
        "cancelled": (rng.random(num_rows) < 0.02).astype(np.int64),
    }
    return Table(schema, columns)


DATASET_GENERATORS: dict[str, Callable[..., Table]] = {
    "nyc311": make_nyc311_table,
    "dob": make_dob_table,
    "ads": make_ads_table,
    "flights": make_flights_table,
}
