"""Random aggregation-query workloads, as in Section 9 of the paper.

Section 9.2: "we generate 100 aggregation queries, randomly generating up to
five equality predicates by randomly picking columns and constants"; Section
9.4: "randomly selecting one aggregation column and one equality predicate
(i.e., a random column and a random value with uniform distribution)".
:class:`WorkloadGenerator` reproduces both shapes against any table.
"""

from __future__ import annotations

import numpy as np

from repro.sqldb.expressions import AggregateCall, AggregateFunction
from repro.sqldb.query import AggregateQuery, Predicate
from repro.sqldb.table import Table

_AGG_FUNCS = (AggregateFunction.COUNT, AggregateFunction.SUM,
              AggregateFunction.AVG, AggregateFunction.MIN,
              AggregateFunction.MAX)


class WorkloadGenerator:
    """Draws random aggregation queries over one table.

    Predicate columns are the table's text columns (equality on categorical
    values, matching the paper's user-study setup); aggregation columns are
    the numeric columns.  Values are drawn uniformly from each column's
    distinct values.
    """

    def __init__(self, table: Table, seed: int = 0) -> None:
        self._table = table
        self._rng = np.random.default_rng(seed)
        self._text_columns = [c.name for c in table.schema.text_columns()]
        self._numeric_columns = [c.name
                                 for c in table.schema.numeric_columns()]
        if not self._text_columns:
            raise ValueError(
                f"table {table.schema.name!r} has no text columns for "
                "equality predicates")
        if not self._numeric_columns:
            raise ValueError(
                f"table {table.schema.name!r} has no numeric columns to "
                "aggregate")
        self._distinct_values = {
            name: np.unique(table.column(name)).tolist()
            for name in self._text_columns
        }

    def random_query(self, max_predicates: int = 5,
                     exact_predicates: int | None = None) -> AggregateQuery:
        """One random query.

        ``exact_predicates`` pins the predicate count (Section 9.4 uses 1);
        otherwise the count is uniform in ``1..max_predicates`` but never
        more than the number of distinct text columns.
        """
        rng = self._rng
        func = _AGG_FUNCS[rng.integers(len(_AGG_FUNCS))]
        if func == AggregateFunction.COUNT:
            column: str | None = None
        else:
            column = self._numeric_columns[
                rng.integers(len(self._numeric_columns))]
        limit = len(self._text_columns)
        if exact_predicates is not None:
            if exact_predicates > limit:
                raise ValueError(
                    f"cannot place {exact_predicates} predicates on "
                    f"{limit} text columns")
            n_predicates = exact_predicates
        else:
            n_predicates = int(rng.integers(1, min(max_predicates, limit) + 1))
        chosen = rng.choice(limit, size=n_predicates, replace=False)
        predicates = []
        for index in chosen:
            name = self._text_columns[int(index)]
            values = self._distinct_values[name]
            predicates.append(
                Predicate(name, values[int(rng.integers(len(values)))]))
        return AggregateQuery(self._table.schema.name,
                              AggregateCall(func, column),
                              tuple(predicates))

    def random_queries(self, count: int, max_predicates: int = 5,
                       exact_predicates: int | None = None,
                       ) -> list[AggregateQuery]:
        """A batch of independent random queries."""
        return [self.random_query(max_predicates, exact_predicates)
                for _ in range(count)]
