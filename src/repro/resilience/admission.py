"""Admission control: bound concurrent work, shed the rest with 429.

A :class:`AdmissionController` caps how many requests may be in flight
at once.  When the cap is reached, :meth:`~AdmissionController.admit`
raises :class:`~repro.errors.OverloadedError` *immediately* — no
queueing — which the demo server maps to ``429 Too Many Requests`` with
a ``Retry-After`` header.  Shedding at the door keeps the latency of
admitted requests bounded under overload instead of letting every
request slow down together (the gate ``scripts/check_shedding.py``
enforces exactly this).

The in-flight count is exported as the live ``resilience_inflight``
gauge and each shed request increments ``resilience_shed``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro.errors import OverloadedError, ReproError
from repro.observability import MetricsRegistry, get_registry

__all__ = ["AdmissionController"]


class AdmissionController:
    """A thread-safe in-flight request limiter.

    Parameters
    ----------
    max_inflight:
        Hard cap on concurrently admitted requests.
    retry_after_seconds:
        The backoff hint attached to shed requests (the server turns it
        into a ``Retry-After`` header).
    metrics:
        Registry receiving the ``resilience_inflight`` gauge and the
        ``resilience_shed`` counter; defaults to the process registry.
    """

    def __init__(self, max_inflight: int,
                 retry_after_seconds: float = 1.0,
                 metrics: MetricsRegistry | None = None) -> None:
        if max_inflight <= 0:
            raise ReproError(
                f"max_inflight must be positive, got {max_inflight}")
        self.max_inflight = int(max_inflight)
        self.retry_after_seconds = float(retry_after_seconds)
        self._lock = threading.Lock()
        self._inflight = 0
        self._shed = 0
        self._metrics = metrics if metrics is not None else get_registry()
        self._metrics.register_gauge("resilience_inflight",
                                     lambda: float(self.inflight))

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    @property
    def shed_total(self) -> int:
        """Requests rejected so far (mirrors the metrics counter)."""
        with self._lock:
            return self._shed

    def try_acquire(self) -> bool:
        """Claim a slot; False (without blocking) when saturated."""
        with self._lock:
            if self._inflight >= self.max_inflight:
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        with self._lock:
            if self._inflight <= 0:  # pragma: no cover - misuse guard
                raise ReproError("release() without a matching acquire")
            self._inflight -= 1

    @contextmanager
    def admit(self) -> Iterator[None]:
        """Hold a slot for the block; shed with ``OverloadedError``."""
        if not self.try_acquire():
            with self._lock:
                self._shed += 1
            self._metrics.counter("resilience_shed").inc()
            raise OverloadedError(
                f"server saturated: {self.max_inflight} requests "
                f"already in flight",
                retry_after_seconds=self.retry_after_seconds)
        try:
            yield
        finally:
            self.release()
