"""Per-request deadlines, propagated through the pipeline by contextvar.

A :class:`Deadline` is a monotonic-clock budget attached to the current
request context (:func:`deadline_scope`).  Pipeline stages read it back
with :func:`current_deadline` and either *check* it (raising
:class:`~repro.errors.DeadlineExceeded` at a named site) or measure the
*remaining fraction* to decide whether to degrade pre-emptively — the
paper's interaction budget ("answers within a couple of seconds or not
at all") made explicit.

Three surfaces set a deadline (tightest active one wins, innermost scope
first):

* ``MUVE_DEADLINE_MS`` — the process-wide default, read lazily so tests
  can monkeypatch the environment.
* ``Muve(deadline_ms=...)`` — a per-pipeline default, applied when no
  caller-provided deadline is already active.
* ``POST /api/ask?deadline_ms=...`` — per-request, set by the demo
  server before entering the pipeline.

:func:`deadline_grace` clears the active deadline for a block: the last
rung of every degradation ladder runs in grace mode, so an expired
deadline still yields the cheapest possible answer instead of an error
storm (each rung's work is strictly cheaper than the stage it replaces,
so grace-mode execution stays bounded).
"""

from __future__ import annotations

import contextvars
import math
import time
from contextlib import contextmanager
from typing import Iterator

from repro.errors import DeadlineExceeded, ReproError
from repro.flags import env_float

__all__ = [
    "Deadline",
    "current_deadline",
    "deadline_grace",
    "deadline_scope",
    "default_deadline_ms",
]


class Deadline:
    """A wall-clock budget for one request (monotonic clock).

    Not a hard interrupt: stages poll via :meth:`check` /
    :meth:`remaining_ms` at their boundaries, so the guarantee is
    "no stage *starts* expensive work past the deadline", which bounds
    end-to-end latency at deadline + one degraded (cheap) tail.
    """

    __slots__ = ("budget_ms", "_expires_at")

    def __init__(self, budget_ms: float) -> None:
        if not budget_ms > 0:
            raise ReproError(
                f"deadline budget must be positive, got {budget_ms}")
        self.budget_ms = float(budget_ms)
        self._expires_at = time.monotonic() + self.budget_ms / 1000.0

    def remaining_ms(self) -> float:
        """Milliseconds left before expiry (0 once expired)."""
        return max(0.0, (self._expires_at - time.monotonic()) * 1000.0)

    def remaining_fraction(self) -> float:
        """Remaining budget as a fraction of the original (0..1)."""
        return self.remaining_ms() / self.budget_ms

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self._expires_at

    def check(self, site: str) -> None:
        """Raise :class:`DeadlineExceeded` at *site* if expired."""
        if self.expired:
            raise DeadlineExceeded(
                f"deadline of {self.budget_ms:.0f} ms exhausted at "
                f"{site}", site=site)

    def exhaust(self) -> None:
        """Force immediate expiry (the ``exhaust_deadline`` fault)."""
        self._expires_at = -math.inf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Deadline(budget={self.budget_ms:.0f} ms, "
                f"remaining={self.remaining_ms():.0f} ms)")


_DEADLINE: contextvars.ContextVar[Deadline | None] = \
    contextvars.ContextVar("muve_deadline", default=None)


def current_deadline() -> Deadline | None:
    """The deadline of the current request context, if any."""
    return _DEADLINE.get()


@contextmanager
def deadline_scope(budget_ms: float | None) -> Iterator[Deadline | None]:
    """Attach a fresh :class:`Deadline` to the current context.

    ``budget_ms=None`` is a no-op scope that inherits whatever deadline
    (or absence of one) is already active, so callers can write one
    ``with`` regardless of configuration.
    """
    if budget_ms is None:
        yield _DEADLINE.get()
        return
    deadline = Deadline(budget_ms)
    token = _DEADLINE.set(deadline)
    try:
        yield deadline
    finally:
        _DEADLINE.reset(token)


@contextmanager
def deadline_grace() -> Iterator[None]:
    """Run a block with no active deadline (the ladder's last rung)."""
    token = _DEADLINE.set(None)
    try:
        yield
    finally:
        _DEADLINE.reset(token)


def default_deadline_ms() -> float | None:
    """The process default from ``MUVE_DEADLINE_MS`` (None = unset).

    Read per call (not cached at import) so test fixtures and the CLI
    can adjust the environment before constructing a pipeline.
    """
    value = env_float("MUVE_DEADLINE_MS", 0.0)
    return value if value > 0 else None
