"""Bounded retry with deterministic jittered backoff.

Only failures typed :class:`~repro.errors.TransientError` (which
injected :class:`~repro.testing.faults.FaultError`\\ s subclass) are
retried — domain errors like a malformed question would fail the same
way every time, so they propagate immediately.  Backoff grows
exponentially with a *seeded* jitter: the same ``(seed, attempt)``
always sleeps the same amount, so chaos tests replay byte-for-byte.

A retry never outlives the request deadline: the sleep is clamped to
the remaining budget and an expired deadline stops retrying outright.
"""

from __future__ import annotations

import random
import time
from typing import Callable, TypeVar

from repro.errors import TransientError
from repro.observability import get_registry, trace_span
from repro.resilience.deadline import current_deadline

__all__ = ["backoff_ms", "is_transient", "retry_call"]

T = TypeVar("T")


def is_transient(exc: BaseException) -> bool:
    """Whether *exc* is worth retrying (see :class:`TransientError`)."""
    return isinstance(exc, TransientError)


def backoff_ms(attempt: int, *, base_delay_ms: float = 20.0,
               max_delay_ms: float = 200.0, seed: int = 0) -> float:
    """The deterministic jittered delay before retry *attempt* (0-based).

    Exponential growth capped at ``max_delay_ms``, then scaled into
    [0.5, 1.0) by a jitter drawn from a ``(seed, attempt)``-keyed RNG —
    full determinism per seed, decorrelation across concurrent retriers
    with different seeds.
    """
    delay = min(max_delay_ms, base_delay_ms * (2.0 ** attempt))
    jitter = random.Random(f"{seed}:{attempt}").random()
    return delay * (0.5 + jitter / 2.0)


def retry_call(fn: Callable[[], T], *, attempts: int = 3,
               base_delay_ms: float = 20.0, max_delay_ms: float = 200.0,
               seed: int = 0, where: str = "retry",
               sleep: Callable[[float], None] = time.sleep) -> T:
    """Call *fn*, retrying transient failures up to *attempts* times.

    ``where`` labels the ``resilience_retries`` counter so callers are
    distinguishable in ``/api/metrics``.  ``sleep`` is injectable for
    tests that assert backoff without waiting.
    """
    if attempts <= 0:
        raise ValueError(f"attempts must be positive, got {attempts}")
    for attempt in range(attempts):
        try:
            return fn()
        except Exception as exc:
            deadline = current_deadline()
            if (attempt + 1 >= attempts or not is_transient(exc)
                    or (deadline is not None and deadline.expired)):
                raise
            delay_ms = backoff_ms(attempt, base_delay_ms=base_delay_ms,
                                  max_delay_ms=max_delay_ms, seed=seed)
            if deadline is not None:
                delay_ms = min(delay_ms, deadline.remaining_ms())
            get_registry().counter("resilience_retries",
                                   where=where).inc()
            with trace_span("resilience.retry", where=where,
                            attempt=attempt + 1) as span:
                span.set_attribute("error_type", type(exc).__name__)
                span.set_attribute("backoff_ms", round(delay_ms, 3))
                sleep(delay_ms / 1000.0)
    raise AssertionError("unreachable")  # pragma: no cover
