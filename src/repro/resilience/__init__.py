"""Resilience for the MUVE serving path: stay useful when things break.

Four building blocks, wired through the whole pipeline (see DESIGN.md,
"Resilience"):

* :mod:`repro.resilience.deadline` — per-request deadlines carried by
  contextvar (``MUVE_DEADLINE_MS`` / ``Muve(deadline_ms=)`` /
  ``POST /api/ask?deadline_ms=``), polled at stage boundaries.
* :mod:`repro.resilience.degradation` — the graceful-degradation
  ladder: on deadline pressure or stage failure fall ILP→greedy,
  batch→per-group, full candidates→top-m, multiplot→single best plot;
  every rung is a typed :class:`DegradationEvent` on the response and a
  ``resilience_degraded`` counter increment.
* :mod:`repro.resilience.admission` — bounded in-flight admission
  control for the demo server (429 + ``Retry-After`` when saturated).
* :mod:`repro.resilience.retry` — bounded deterministic-jitter retries
  for :class:`~repro.errors.TransientError` failures (used by
  :class:`~repro.session.MuveSession`).

The deterministic fault-injection harness driving the chaos tests lives
in :mod:`repro.testing.faults`.
"""

from repro.resilience.admission import AdmissionController
from repro.resilience.deadline import (
    Deadline,
    current_deadline,
    deadline_grace,
    deadline_scope,
    default_deadline_ms,
)
from repro.resilience.degradation import (
    CANDIDATE_PRESSURE_FRACTION,
    EXECUTION_PRESSURE_FRACTION,
    DegradationEvent,
    current_degradations,
    degradation_count,
    degradation_scope,
    exception_reason,
    record_degradation,
)
from repro.resilience.retry import backoff_ms, is_transient, retry_call

__all__ = [
    "AdmissionController",
    "CANDIDATE_PRESSURE_FRACTION",
    "Deadline",
    "DegradationEvent",
    "EXECUTION_PRESSURE_FRACTION",
    "backoff_ms",
    "current_deadline",
    "current_degradations",
    "deadline_grace",
    "deadline_scope",
    "default_deadline_ms",
    "degradation_count",
    "degradation_scope",
    "exception_reason",
    "is_transient",
    "record_degradation",
    "retry_call",
]
