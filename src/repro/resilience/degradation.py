"""The graceful-degradation ladder: typed events, per-request collection.

When a stage hits deadline pressure or fails, the serving path does not
abort the request — it falls one rung down a fixed ladder and records a
:class:`DegradationEvent` describing what was given up:

========================  =========================  ====================
site                      action                     replaces
========================  =========================  ====================
``speech``                ``identity_transcript``    simulated recognition
``phonetics``             ``alternatives_skipped``   per-element lookup
``candidates``            ``seed_only`` /            full candidate set
                          ``top_m``
``planner``               ``ilp_to_greedy``          ILP / best planning
``executor``              ``batch_to_per_group``     one-pass batch path
``executor``              ``single_plot``            full multiplot
========================  =========================  ====================

Events are appended to a contextvar-scoped collector opened per request
(:func:`degradation_scope`), attached to the outgoing
:class:`~repro.muve.MuveResponse`, counted in the default metrics
registry (``resilience_degraded{site=...,action=...}``), and emitted as
zero-work ``resilience.degrade`` spans so traces show exactly where a
request fell down the ladder.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.observability import get_registry, trace_span

__all__ = [
    "CANDIDATE_PRESSURE_FRACTION",
    "DegradationEvent",
    "EXECUTION_PRESSURE_FRACTION",
    "current_degradations",
    "degradation_count",
    "degradation_scope",
    "exception_reason",
    "record_degradation",
]

#: Truncate the candidate set to top-m when less than this fraction of
#: the deadline budget remains after candidate generation.
CANDIDATE_PRESSURE_FRACTION = 0.5

#: Shrink to the single best plot when less than this fraction of the
#: budget remains at execution time (or the deadline already expired).
EXECUTION_PRESSURE_FRACTION = 0.15


@dataclass(frozen=True)
class DegradationEvent:
    """One rung taken on the degradation ladder for one request."""

    site: str    #: pipeline stage ("planner", "executor", ...)
    action: str  #: the rung taken ("ilp_to_greedy", "single_plot", ...)
    reason: str  #: what forced it ("deadline", "error:FaultError", ...)
    detail: str = ""  #: free-form context ("20 -> 5 candidates")

    def to_dict(self) -> dict[str, str]:
        return {"site": self.site, "action": self.action,
                "reason": self.reason, "detail": self.detail}


_EVENTS: contextvars.ContextVar[list[DegradationEvent] | None] = \
    contextvars.ContextVar("muve_degradations", default=None)


@contextmanager
def degradation_scope() -> Iterator[list[DegradationEvent]]:
    """Collect degradation events for one request.

    Nested scopes are independent (inner events do not leak outward):
    each ask owns exactly the events of its own pipeline run.
    """
    events: list[DegradationEvent] = []
    token = _EVENTS.set(events)
    try:
        yield events
    finally:
        _EVENTS.reset(token)


def current_degradations() -> tuple[DegradationEvent, ...]:
    """Events recorded so far in the active request scope."""
    events = _EVENTS.get()
    return tuple(events) if events else ()


def degradation_count() -> int | None:
    """Events recorded so far, or ``None`` when no scope is active.

    Unlike :func:`current_degradations` this distinguishes "no collector"
    from "collector with no events", which cache layers need: a stage
    can prove its output undegraded (and therefore cacheable) only by
    observing that the count did not grow across its computation.
    """
    events = _EVENTS.get()
    return None if events is None else len(events)


def record_degradation(site: str, action: str, reason: str,
                       detail: str = "") -> DegradationEvent:
    """Record one ladder step: collector + metrics + a marker span.

    Safe to call without an active scope (e.g. a bare planner used
    outside the Muve pipeline): the event is still counted and traced,
    it just is not attached to any response.
    """
    event = DegradationEvent(site=site, action=action, reason=reason,
                             detail=detail)
    events = _EVENTS.get()
    if events is not None:
        events.append(event)
    get_registry().counter("resilience_degraded", site=site,
                           action=action).inc()
    with trace_span("resilience.degrade", site=site, action=action,
                    reason=reason):
        pass
    return event


def exception_reason(exc: BaseException) -> str:
    """The canonical ``reason`` string for an exception-driven rung."""
    from repro.errors import DeadlineExceeded
    if isinstance(exc, DeadlineExceeded):
        return "deadline"
    return f"error:{type(exc).__name__}"
