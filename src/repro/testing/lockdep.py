"""Lockdep-style runtime lock-order checking (``MUVE_LOCKDEP=1``).

The static rules in ``tools/muvelint`` catch what is visible in the
source; lock-order inversions are not — an ABBA deadlock needs two call
paths that each look fine alone.  This checker borrows the Linux
kernel's lockdep idea: record the *acquisition-order graph* while the
test suite exercises the code, and fail if the graph ever gains a
cycle.  A cycle means two threads can interleave into a deadlock even
if this particular run got lucky.

Mechanics
---------

:func:`install` replaces ``threading.Lock``/``threading.RLock`` with
factories returning tracked wrappers.  Each wrapper keeps its creation
site (the first frame outside this module and ``threading``), and each
thread keeps a stack of wrappers it currently holds.  On acquisition
with locks already held, one edge per held lock is added:
``held-site -> acquired-site``.  Edges are keyed by creation site, not
object identity, so every ``WorkerPool`` instance contributes to the
same node — order violations between *instances* of the same lock
class surface too (reported unless the edge is a self-loop, which
re-entrant same-class locking makes routine and benign for RLocks).

Two violation kinds are recorded:

* ``cycle`` — a new edge closes a cycle in the order graph.
* ``held-across-pool-wait`` — :meth:`WorkerPool.run_tasks` entered
  while the calling thread holds any tracked lock.  Waiting on pool
  results while holding a lock is a deadlock with a saturated pool
  (workers may need that lock to finish), so it is flagged even
  though it is not a two-lock inversion.

Violations are *recorded*, not raised at the fault site (raising
inside ``acquire`` would poison unrelated code paths); the pytest
plugin in ``tests/conftest.py`` fails the session if any were seen.
Unit tests use :func:`strict` to assert eagerly instead.

Scope: only locks created *after* :func:`install` by code under
``repro`` (or tests) are tracked; stdlib-internal locks keep the real
primitives.  Overhead with ``MUVE_LOCKDEP`` unset is zero — nothing
is patched.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.flags import env_switch

__all__ = [
    "LockdepError",
    "LockdepState",
    "enabled_from_env",
    "get_state",
    "install",
    "reset",
    "tracked_lock",
    "tracked_rlock",
    "uninstall",
]


class LockdepError(AssertionError):
    """Raised in strict mode when an ordering violation is detected."""


@dataclass(frozen=True)
class Violation:
    kind: str  # "cycle" | "held-across-pool-wait"
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"


@dataclass
class LockdepState:
    """The process-wide acquisition-order graph and its violations."""

    #: site -> set of sites acquired while that site was held.
    edges: dict[str, set[str]] = field(default_factory=dict)
    #: (held-site, acquired-site) -> first witness description.
    witnesses: dict[tuple[str, str], str] = field(default_factory=dict)
    violations: list[Violation] = field(default_factory=list)
    strict: bool = False
    lock: threading.Lock = field(default_factory=threading.Lock)

    def clear(self) -> None:
        with self.lock:
            self.edges.clear()
            self.witnesses.clear()
            self.violations.clear()


_STATE = LockdepState()
_LOCAL = threading.local()

_real_lock = threading.Lock
_real_rlock = threading.RLock
_installed = False
_pool_patch: Callable[..., Any] | None = None


def get_state() -> LockdepState:
    return _STATE


def reset() -> None:
    """Forget recorded edges and violations (test isolation)."""
    _STATE.clear()


def enabled_from_env() -> bool:
    return env_switch("MUVE_LOCKDEP", "off")


def _held_stack() -> list:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


def _creation_site() -> str:
    """``file:line`` of the frame that created the lock, skipping this
    module and ``threading`` internals."""
    skip = (__file__, threading.__file__)
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename not in skip:
            return f"{filename.rsplit('/', 1)[-1]}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


def _find_cycle(edges: dict[str, set[str]], start: str,
                goal: str) -> list[str] | None:
    """A path ``start -> ... -> goal`` in *edges* (DFS), or None."""
    seen = {start}
    path = [start]

    def visit(node: str) -> bool:
        for succ in sorted(edges.get(node, ())):
            if succ == goal:
                path.append(succ)
                return True
            if succ in seen:
                continue
            seen.add(succ)
            path.append(succ)
            if visit(succ):
                return True
            path.pop()
        return False

    return path if visit(start) else None


def _record_violation(violation: Violation) -> None:
    _STATE.violations.append(violation)
    if _STATE.strict:
        raise LockdepError(str(violation))


def _on_acquired(wrapper: "_TrackedLock") -> None:
    stack = _held_stack()
    if stack:
        held = stack[-1]
        edge = (held.site, wrapper.site)
        if held.site != wrapper.site:
            with _STATE.lock:
                new = wrapper.site not in _STATE.edges.get(
                    held.site, ())
                if new:
                    _STATE.edges.setdefault(
                        held.site, set()).add(wrapper.site)
                    _STATE.witnesses[edge] = (
                        f"{threading.current_thread().name} acquired "
                        f"{wrapper.site} while holding {held.site}")
                    back = _find_cycle(
                        _STATE.edges, wrapper.site, held.site)
                else:
                    back = None
            if back is not None:
                chain = " -> ".join([held.site, *back[1:], held.site])
                _record_violation(Violation(
                    kind="cycle",
                    detail=(f"lock-order cycle {chain} (witness: "
                            f"{_STATE.witnesses[edge]})")))
    stack.append(wrapper)


def _on_released(wrapper: "_TrackedLock") -> None:
    stack = _held_stack()
    # Release order need not be LIFO; drop the most recent entry.
    for i in range(len(stack) - 1, -1, -1):
        if stack[i] is wrapper:
            del stack[i]
            break


class _TrackedLock:
    """A ``threading.Lock`` stand-in that reports to the order graph.

    Delegates ``_release_save``/``_acquire_restore``/``_is_owned`` so
    instances still back a ``threading.Condition``.
    """

    _factory = staticmethod(lambda: _real_lock())

    def __init__(self) -> None:
        self._inner = self._factory()
        self.site = _creation_site()
        self._depth = 0

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            if self._depth == 0:
                _on_acquired(self)
            self._depth += 1
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._depth -= 1
        if self._depth == 0:
            _on_released(self)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    # -- Condition protocol --------------------------------------------

    def _release_save(self):  # pragma: no cover - Condition internals
        self._depth -= 1
        if self._depth == 0:
            _on_released(self)
        if hasattr(self._inner, "_release_save"):
            return self._inner._release_save()
        self._inner.release()
        return None

    def _acquire_restore(self, state):  # pragma: no cover
        if hasattr(self._inner, "_acquire_restore"):
            self._inner._acquire_restore(state)
        else:
            self._inner.acquire()
        if self._depth == 0:
            _on_acquired(self)
        self._depth += 1

    def _is_owned(self) -> bool:
        if hasattr(self._inner, "_is_owned"):
            return self._inner._is_owned()
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def _at_fork_reinit(self) -> None:
        """Fork support: stdlib modules imported while lockdep is
        installed (e.g. ``concurrent.futures.thread``) register their
        module-level lock's ``_at_fork_reinit`` with
        ``os.register_at_fork``."""
        self._inner._at_fork_reinit()
        self._depth = 0

    def __getattr__(self, name: str) -> Any:
        # Anything else the stdlib expects of a real lock delegates to
        # the wrapped primitive (only reached for names not defined on
        # the wrapper).
        if name == "_inner":
            raise AttributeError(name)
        return getattr(self._inner, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<tracked {type(self._inner).__name__} @ {self.site}>"


class _TrackedRLock(_TrackedLock):
    _factory = staticmethod(lambda: _real_rlock())


def tracked_lock() -> _TrackedLock:
    """A tracked ``Lock`` regardless of install state (unit tests)."""
    return _TrackedLock()


def tracked_rlock() -> _TrackedRLock:
    return _TrackedRLock()


def held_locks() -> list:
    """The tracked locks the calling thread currently holds."""
    return list(_held_stack())


# ---------------------------------------------------------------------------
# Installation
# ---------------------------------------------------------------------------


def _checked_run_tasks(original: Callable[..., Any],
                       ) -> Callable[..., Any]:
    def run_tasks(self: Any, thunks: Any, *args: Any,
                  **kwargs: Any) -> Any:
        stack = _held_stack()
        if stack:
            sites = ", ".join(w.site for w in stack)
            _record_violation(Violation(
                kind="held-across-pool-wait",
                detail=(f"WorkerPool.run_tasks entered while holding "
                        f"lock(s) {sites} — waiting on pool results "
                        f"under a lock deadlocks a saturated pool")))
        return original(self, thunks, *args, **kwargs)

    run_tasks._lockdep_original = original
    return run_tasks


def install(strict: bool = False) -> None:
    """Patch ``threading`` lock factories and the WorkerPool wait.

    Idempotent.  Only affects locks created after the call, so stdlib
    and interpreter-internal locks keep the real primitives.
    """
    global _installed, _pool_patch
    if _installed:
        _STATE.strict = strict
        return
    _STATE.strict = strict
    threading.Lock = _TrackedLock
    threading.RLock = _TrackedRLock
    from repro.execution.parallel import WorkerPool
    _pool_patch = WorkerPool.run_tasks
    WorkerPool.run_tasks = _checked_run_tasks(
        WorkerPool.run_tasks)
    _installed = True


def uninstall() -> None:
    """Restore the real primitives (paired with :func:`install`)."""
    global _installed, _pool_patch
    if not _installed:
        return
    threading.Lock = _real_lock
    threading.RLock = _real_rlock
    if _pool_patch is not None:
        from repro.execution.parallel import WorkerPool
        WorkerPool.run_tasks = _pool_patch
        _pool_patch = None
    _installed = False


def report() -> str:
    """Human-readable summary of recorded violations (empty if none)."""
    if not _STATE.violations:
        return ""
    lines = [f"lockdep: {len(_STATE.violations)} violation(s)"]
    lines.extend(f"  {v}" for v in _STATE.violations)
    return "\n".join(lines)
