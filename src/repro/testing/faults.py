"""Deterministic fault injection at named serving-path sites.

The resilience layer is only trustworthy if its failure handling is
*tested*, and failures must be reproducible to be testable.  This
harness plants :func:`fault_point` probes at named sites in the
pipeline; an activated :class:`FaultPlan` makes chosen sites misbehave
in a seed-deterministic way — same plan + same seed = same faults at
the same invocations, across runs and across threads.

Sites (the registry production code is instrumented with)::

    speech.transcribe     SpeechSimulator.transcribe
    candidates.generate   Muve._run_pipeline, before candidate expansion
    phonetics.lookup      CandidateGenerator, before each index probe
    planner.solve         VisualizationPlanner, before the primary solve
    executor.batch        ExecutionPlan.run, before the one-pass batch
    executor.group        ExecutionPlan.run, before each merged group
    session.replan        MuveSession, before the history-based replan

Fault kinds:

* ``delay=<ms>`` — sleep that long (interrupted by the active deadline:
  expiry mid-sleep raises :class:`~repro.errors.DeadlineExceeded`).
* ``stall`` — sleep until the active deadline expires, then raise
  ``DeadlineExceeded`` (no deadline: sleep ``stall_cap_ms`` and raise
  :class:`FaultError` — a stall must never hang a test).
* ``error=<ExceptionName>`` — raise that :class:`~repro.errors
  .ReproError` subclass (default :class:`FaultError`, which is
  transient and therefore retriable).
* ``exhaust_deadline`` — force the active deadline to expire instantly
  (zero-sleep deadline-pressure tests).

Plans are activated process-wide via the ``MUVE_FAULTS`` environment
variable (seed in ``MUVE_FAULT_SEED``), :func:`set_fault_plan`, or the
:func:`inject_faults` context manager::

    MUVE_FAULTS="planner.solve:stall" python -m repro --serve

    with inject_faults("executor.batch:error=FaultError@0.5#3", seed=7):
        muve.ask(...)

Spec grammar: ``site:kind[=value][@probability][#times]`` joined by
``;``.  ``@p`` fires each invocation with probability ``p`` (seeded,
deterministic per invocation index); ``#n`` stops after ``n`` firings.

An inactive harness costs one global ``None`` check per probe — the
``make profile`` overhead gate covers the no-fault serving path.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro import errors as _errors
from repro.errors import ReproError, TransientError
from repro.flags import env_int, env_str
from repro.resilience.deadline import current_deadline

__all__ = [
    "FAULT_SITES",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "active_fault_plan",
    "fault_point",
    "inject_faults",
    "set_fault_plan",
]

#: Every site instrumented with a :func:`fault_point` probe.  Plans may
#: only target these names — a typo in a spec fails fast at parse time
#: instead of silently injecting nothing.
FAULT_SITES: tuple[str, ...] = (
    "speech.transcribe",
    "candidates.generate",
    "phonetics.lookup",
    "planner.solve",
    "executor.batch",
    "executor.group",
    "session.replan",
)

_KINDS = ("delay", "error", "stall", "exhaust_deadline")

#: Sleep granularity while delaying/stalling: small enough that a stall
#: overshoots the deadline by at most one hop.
_SLEEP_HOP_S = 0.005


class FaultError(TransientError):
    """The default injected failure (transient, hence retriable)."""


@dataclass(frozen=True)
class FaultRule:
    """One site's misbehaviour within a plan."""

    site: str
    kind: str
    delay_ms: float = 0.0
    error: str = "FaultError"
    probability: float = 1.0
    times: int | None = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ReproError(
                f"unknown fault site {self.site!r}; known sites: "
                f"{', '.join(FAULT_SITES)}")
        if self.kind not in _KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; known kinds: "
                f"{', '.join(_KINDS)}")
        if not 0.0 <= self.probability <= 1.0:
            raise ReproError(
                f"fault probability must be in [0, 1], got "
                f"{self.probability}")
        if self.kind == "delay" and self.delay_ms < 0:
            raise ReproError(
                f"fault delay must be >= 0, got {self.delay_ms}")
        if self.times is not None and self.times <= 0:
            raise ReproError(
                f"fault times must be positive, got {self.times}")
        _resolve_error(self.error)  # validate eagerly


def _resolve_error(name: str) -> type[ReproError]:
    """Map an exception name from a spec to a raisable error class."""
    if name == "FaultError":
        return FaultError
    candidate = getattr(_errors, name, None)
    if (isinstance(candidate, type)
            and issubclass(candidate, ReproError)):
        return candidate
    raise ReproError(
        f"unknown injected error type {name!r} (must be FaultError or "
        f"a ReproError subclass from repro.errors)")


class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s with activation state.

    Thread-safe: the invocation counters are locked, and probabilistic
    firing depends only on ``(seed, site, invocation_index)`` — the
    8-thread hammer sees the same fault sequence per site as a serial
    run issuing the same number of probes.
    """

    def __init__(self, rules: Iterator[FaultRule] | list[FaultRule],
                 seed: int = 0, stall_cap_ms: float = 100.0) -> None:
        self.rules: dict[str, FaultRule] = {}
        for rule in rules:
            if rule.site in self.rules:
                raise ReproError(
                    f"duplicate fault rule for site {rule.site!r}")
            self.rules[rule.site] = rule
        self.seed = int(seed)
        self.stall_cap_ms = float(stall_cap_ms)
        self._lock = threading.Lock()
        self._invocations: dict[str, int] = {}
        self._fired: dict[str, int] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from the ``MUVE_FAULTS`` grammar (see module
        docstring).  An empty spec yields an empty (inert) plan."""
        rules = []
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            site, sep, behaviour = clause.partition(":")
            if not sep or not behaviour:
                raise ReproError(
                    f"bad fault clause {clause!r} (want site:kind[...])")
            rules.append(cls._parse_rule(site.strip(), behaviour.strip()))
        return cls(rules, seed=seed)

    @staticmethod
    def _parse_rule(site: str, behaviour: str) -> FaultRule:
        times: int | None = None
        probability = 1.0
        if "#" in behaviour:
            behaviour, _, raw = behaviour.partition("#")
            times = _parse_number(raw, int, "#times")
        if "@" in behaviour:
            behaviour, _, raw = behaviour.partition("@")
            probability = _parse_number(raw, float, "@probability")
        kind, _, value = behaviour.partition("=")
        kind = kind.strip()
        value = value.strip()
        delay_ms = 0.0
        error = "FaultError"
        if kind == "delay":
            delay_ms = _parse_number(value or "0", float, "delay")
        elif kind == "error" and value:
            error = value
        return FaultRule(site=site, kind=kind, delay_ms=delay_ms,
                         error=error, probability=probability,
                         times=times)

    # -- introspection --------------------------------------------------

    def invocations(self, site: str) -> int:
        """How many times *site*'s probe ran under this plan."""
        with self._lock:
            return self._invocations.get(site, 0)

    def fired(self, site: str) -> int:
        """How many times *site* actually misbehaved."""
        with self._lock:
            return self._fired.get(site, 0)

    def reset(self) -> None:
        """Forget activation state (replaying a plan from scratch)."""
        with self._lock:
            self._invocations.clear()
            self._fired.clear()

    # -- activation -----------------------------------------------------

    def apply(self, site: str) -> None:
        """Run *site*'s rule once (called from :func:`fault_point`)."""
        with self._lock:
            index = self._invocations.get(site, 0)
            self._invocations[site] = index + 1
            rule = self.rules.get(site)
            if rule is None:
                return
            if rule.times is not None and \
                    self._fired.get(site, 0) >= rule.times:
                return
            if rule.probability < 1.0:
                draw = random.Random(
                    f"{self.seed}:{site}:{index}").random()
                if draw >= rule.probability:
                    return
            self._fired[site] = self._fired.get(site, 0) + 1
        self._fire(rule, site)

    def _fire(self, rule: FaultRule, site: str) -> None:
        if rule.kind == "exhaust_deadline":
            deadline = current_deadline()
            if deadline is not None:
                deadline.exhaust()
            return
        if rule.kind == "error":
            raise _resolve_error(rule.error)(
                f"injected {rule.error} at {site}")
        if rule.kind == "delay":
            self._sleep(rule.delay_ms, site)
            return
        # stall: burn the whole remaining deadline, then surface it.
        deadline = current_deadline()
        if deadline is None:
            self._sleep(self.stall_cap_ms, site)
            raise FaultError(
                f"injected stall at {site} (no deadline to exhaust; "
                f"capped at {self.stall_cap_ms:.0f} ms)")
        self._sleep(deadline.budget_ms, site)

    @staticmethod
    def _sleep(delay_ms: float, site: str) -> None:
        """Sleep up to *delay_ms*, hopping so an active deadline is
        honoured; expiry mid-sleep raises at the faulted site."""
        end = time.monotonic() + delay_ms / 1000.0
        while True:
            deadline = current_deadline()
            if deadline is not None:
                deadline.check(site)
            remaining = end - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(remaining, _SLEEP_HOP_S))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sites = ", ".join(sorted(self.rules))
        return f"FaultPlan(seed={self.seed}, sites=[{sites}])"


def _parse_number(raw: str, cast, what: str):
    try:
        return cast(raw)
    except (TypeError, ValueError):
        raise ReproError(
            f"bad {what} value {raw!r} in fault spec") from None


# ---------------------------------------------------------------------------
# Process-wide activation
# ---------------------------------------------------------------------------

_active: FaultPlan | None = None
_active_lock = threading.Lock()


def _load_from_env() -> FaultPlan | None:
    spec = env_str("MUVE_FAULTS").strip()
    if not spec:
        return None
    seed = env_int("MUVE_FAULT_SEED", 0)
    plan = FaultPlan.parse(spec, seed=seed)
    return plan if plan.rules else None


_active = _load_from_env()


def active_fault_plan() -> FaultPlan | None:
    """The currently activated plan (None = faults off)."""
    return _active


def set_fault_plan(plan: FaultPlan | None) -> None:
    """Activate *plan* process-wide (None deactivates)."""
    global _active
    with _active_lock:
        _active = plan


@contextmanager
def inject_faults(plan: "FaultPlan | str", seed: int = 0):
    """Activate a plan (or spec string) for a block, restoring after.

    Yields the :class:`FaultPlan` so tests can assert invocation and
    firing counts afterwards.
    """
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan, seed=seed)
    global _active
    with _active_lock:
        previous = _active
        _active = plan
    try:
        yield plan
    finally:
        with _active_lock:
            _active = previous


def fault_point(site: str) -> None:
    """The probe production code plants at each named site.

    Free when no plan is active (one global read); under a plan it
    delegates to :meth:`FaultPlan.apply`.
    """
    plan = _active
    if plan is not None:
        plan.apply(site)
