"""Test-support infrastructure that ships with the library.

Currently one module: :mod:`repro.testing.faults`, the deterministic
fault-injection harness the resilience chaos suite drives.  It lives in
the package (not under ``tests/``) because production call sites invoke
:func:`~repro.testing.faults.fault_point` directly and operators can
activate plans via ``MUVE_FAULTS`` against a running server.
"""

from repro.testing.faults import (
    FAULT_SITES,
    FaultError,
    FaultPlan,
    FaultRule,
    active_fault_plan,
    fault_point,
    inject_faults,
    set_fault_plan,
)

__all__ = [
    "FAULT_SITES",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "active_fault_plan",
    "fault_point",
    "inject_faults",
    "set_fault_plan",
]
