"""Pixel layout of a multiplot under a :class:`ScreenGeometry`.

The planner reasons in bar-width units; renderers need rectangles.  This
module converts a planned multiplot into absolute pixel boxes: one
:class:`PlotBox` per plot (title strip plus chart area) containing one
:class:`BarBox` per bar, scaled within the plot to the plot's own value
range (each plot has its own y-axis, like the paper's prototype).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import Bar, Multiplot, Plot, ScreenGeometry
from repro.errors import VisualizationError

_TITLE_HEIGHT_FRACTION = 0.18
_BAR_GAP_FRACTION = 0.15


@dataclass(frozen=True)
class BarBox:
    """One bar's rectangle plus its metadata."""

    bar: Bar
    x: float
    y: float
    width: float
    height: float


@dataclass(frozen=True)
class PlotBox:
    """One plot's frame, title area and bar rectangles."""

    plot: Plot
    x: float
    y: float
    width: float
    height: float
    title_height: float
    bars: tuple[BarBox, ...]


@dataclass(frozen=True)
class MultiplotLayout:
    """The complete pixel layout."""

    width: float
    height: float
    plots: tuple[PlotBox, ...]


def layout_multiplot(multiplot: Multiplot,
                     geometry: ScreenGeometry) -> MultiplotLayout:
    """Compute pixel boxes for *multiplot*.

    Raises :class:`VisualizationError` when the multiplot does not fit the
    geometry — planners guarantee fit, so a failure here means a caller
    bypassed planning.
    """
    if not geometry.fits(multiplot):
        raise VisualizationError(
            "multiplot exceeds the screen geometry it is rendered for")
    plot_boxes: list[PlotBox] = []
    row_height = geometry.row_height_pixels
    for row_index, row in enumerate(multiplot.rows):
        x_cursor = 0.0
        y = row_index * row_height
        for plot in row:
            width = geometry.plot_units(plot) * geometry.bar_width_pixels
            plot_boxes.append(
                _layout_plot(plot, x_cursor, y, width, row_height,
                             geometry))
            x_cursor += width
    total_height = max(1, len(multiplot.rows)) * row_height
    return MultiplotLayout(
        width=float(geometry.width_pixels),
        height=float(total_height),
        plots=tuple(plot_boxes),
    )


def _layout_plot(plot: Plot, x: float, y: float, width: float,
                 height: float, geometry: ScreenGeometry) -> PlotBox:
    title_height = height * _TITLE_HEIGHT_FRACTION
    chart_top = y + title_height
    chart_height = height - title_height
    base_width = (geometry.plot_base_units(plot.template)
                  * geometry.bar_width_pixels)
    bars_left = x + min(base_width, width)

    values = [bar.value for bar in plot.bars if bar.value is not None]
    max_value = max((abs(v) for v in values), default=0.0)
    boxes: list[BarBox] = []
    bar_width = geometry.bar_width_pixels
    gap = bar_width * _BAR_GAP_FRACTION
    for index, bar in enumerate(plot.bars):
        if bar.value is None or max_value == 0.0:
            bar_height = 0.0
        else:
            bar_height = chart_height * 0.9 * abs(bar.value) / max_value
        boxes.append(BarBox(
            bar=bar,
            x=bars_left + index * bar_width + gap / 2,
            y=chart_top + chart_height - bar_height,
            width=bar_width - gap,
            height=bar_height,
        ))
    return PlotBox(
        plot=plot,
        x=x,
        y=y,
        width=width,
        height=height,
        title_height=title_height,
        bars=tuple(boxes),
    )
