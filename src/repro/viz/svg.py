"""Dependency-free SVG rendering of multiplots.

Produces a self-contained SVG document mirroring the paper's prototype
output (Figure 2): a grid of titled bar plots, likely results marked up in
red, x-axis labels naming the placeholder substitutions.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from repro.core.model import Multiplot, ScreenGeometry
from repro.viz.layout import layout_multiplot

_HIGHLIGHT_COLOR = "#d62728"  # the paper's markup red
_BAR_COLOR = "#4878a8"
_FRAME_COLOR = "#cccccc"
_TEXT_COLOR = "#222222"


def render_svg(multiplot: Multiplot, geometry: ScreenGeometry,
               headline: str | None = None) -> str:
    """Render *multiplot* as an SVG string.

    ``headline`` is the common-elements line above the plots (Figure 2b).
    """
    layout = layout_multiplot(multiplot, geometry)
    headline_height = 28.0 if headline else 0.0
    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{layout.width:.0f}" '
        f'height="{layout.height + headline_height:.0f}" '
        f'viewBox="0 0 {layout.width:.0f} '
        f'{layout.height + headline_height:.0f}">',
        f'<rect width="100%" height="100%" fill="white"/>',
    ]
    if headline:
        parts.append(
            f'<text x="{layout.width / 2:.1f}" y="19" '
            f'text-anchor="middle" font-family="sans-serif" '
            f'font-size="15" fill="{_TEXT_COLOR}">'
            f'{escape(headline)}</text>')
    for plot_box in layout.plots:
        y_offset = plot_box.y + headline_height
        parts.append(
            f'<rect x="{plot_box.x + 2:.1f}" y="{y_offset + 2:.1f}" '
            f'width="{plot_box.width - 4:.1f}" '
            f'height="{plot_box.height - 4:.1f}" fill="none" '
            f'stroke="{_FRAME_COLOR}"/>')
        parts.append(
            f'<text x="{plot_box.x + plot_box.width / 2:.1f}" '
            f'y="{y_offset + plot_box.title_height * 0.7:.1f}" '
            f'text-anchor="middle" font-family="sans-serif" '
            f'font-size="11" fill="{_TEXT_COLOR}">'
            f'{escape(plot_box.plot.title)}</text>')
        for bar_box in plot_box.bars:
            color = (_HIGHLIGHT_COLOR if bar_box.bar.highlighted
                     else _BAR_COLOR)
            if bar_box.height > 0:
                parts.append(
                    f'<rect x="{bar_box.x:.1f}" '
                    f'y="{bar_box.y + headline_height:.1f}" '
                    f'width="{bar_box.width:.1f}" '
                    f'height="{bar_box.height:.1f}" fill="{color}"/>')
            label_y = y_offset + plot_box.height - 6
            parts.append(
                f'<text x="{bar_box.x + bar_box.width / 2:.1f}" '
                f'y="{label_y:.1f}" text-anchor="middle" '
                f'font-family="sans-serif" font-size="9" '
                f'fill="{_TEXT_COLOR}">'
                f'{escape(_shorten(bar_box.bar.label))}</text>')
            if bar_box.bar.value is not None and bar_box.height > 0:
                parts.append(
                    f'<text x="{bar_box.x + bar_box.width / 2:.1f}" '
                    f'y="{bar_box.y + headline_height - 3:.1f}" '
                    f'text-anchor="middle" font-family="sans-serif" '
                    f'font-size="9" fill="{_TEXT_COLOR}">'
                    f'{_format_value(bar_box.bar.value)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def _shorten(label: str, limit: int = 9) -> str:
    if len(label) <= limit:
        return label
    return label[: limit - 1] + "…"


def _format_value(value: float) -> str:
    if abs(value) >= 1_000_000:
        return f"{value / 1_000_000:.1f}M"
    if abs(value) >= 1_000:
        return f"{value / 1_000:.1f}k"
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:.2f}"
