"""Multiplot rendering: pixel layout, SVG output, terminal output.

The paper's prototype renders multiplots in a browser; here we provide a
dependency-free SVG renderer (for files/notebooks) and a terminal renderer
(for the examples), both driven by the same pixel layout that the planner's
:class:`~repro.core.model.ScreenGeometry` constraints describe.
"""

from repro.viz.layout import BarBox, MultiplotLayout, PlotBox, layout_multiplot
from repro.viz.svg import render_svg
from repro.viz.text import render_text

__all__ = [
    "BarBox",
    "MultiplotLayout",
    "PlotBox",
    "layout_multiplot",
    "render_svg",
    "render_text",
]
