"""Terminal rendering of multiplots (for the runnable examples).

Each plot prints its title, then one line per bar with a unicode block
gauge scaled to the plot's value range; highlighted bars are wrapped in
``[ ]`` and tagged ``<-- likely`` like the red markup of the prototype.
"""

from __future__ import annotations

from repro.core.model import Multiplot, Plot

_GAUGE_WIDTH = 30


def render_text(multiplot: Multiplot, headline: str | None = None) -> str:
    """Render *multiplot* as a printable string."""
    lines: list[str] = []
    if headline:
        lines.append(headline)
        lines.append("=" * min(len(headline), 78))
    for row_index, row in enumerate(multiplot.rows):
        if not row:
            continue
        for plot in row:
            lines.extend(_render_plot(plot, row_index))
            lines.append("")
    if not lines:
        return "(empty multiplot)\n"
    return "\n".join(lines).rstrip() + "\n"


def _render_plot(plot: Plot, row_index: int) -> list[str]:
    lines = [f"[row {row_index}] {plot.title}"]
    values = [abs(bar.value) for bar in plot.bars if bar.value is not None]
    max_value = max(values, default=0.0)
    label_width = max((len(bar.label) for bar in plot.bars), default=0)
    label_width = min(label_width, 24)
    for bar in plot.bars:
        label = bar.label[:label_width].ljust(label_width)
        if bar.value is None:
            gauge = "(no result)"
            value_text = ""
        else:
            filled = (0 if max_value == 0 else
                      round(_GAUGE_WIDTH * abs(bar.value) / max_value))
            gauge = "█" * filled + "·" * (_GAUGE_WIDTH - filled)
            value_text = f" {bar.value:,.2f}"
        marker = "[*]" if bar.highlighted else "   "
        suffix = "  <-- likely" if bar.highlighted else ""
        lines.append(f"  {marker} {label} {gauge}{value_text}{suffix}")
    return lines
