"""Multi-turn sessions: MUVE that learns from confirmed results.

A :class:`MuveSession` wraps a :class:`~repro.muve.Muve` instance and a
:class:`~repro.nlq.priors.QueryLogPrior`.  Each turn re-weights the
candidate distribution by what this user has asked before; when the user
clicks a bar (confirming which interpretation was correct), the session
logs it, sharpening future distributions.  This operationalises the
related-work observation that query-log information is complementary to
MUVE's phonetic disambiguation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.problem import MultiplotSelectionProblem
from repro.errors import ReproError
from repro.execution.progressive import ProcessingStrategy
from repro.muve import Muve, MuveResponse
from repro.nlq.priors import QueryLogPrior
from repro.observability import trace_span
from repro.sqldb.query import AggregateQuery


@dataclass
class MuveSession:
    """A user session: per-user prior over interpretations.

    Parameters
    ----------
    muve:
        The underlying system (shared across sessions is fine — the
        session only owns the prior).
    prior_strength:
        How strongly history shifts the distribution (0 disables).

    Concurrency: the shared :class:`Muve` pipeline needs no lock, but the
    session's own state (the query-log prior and the turn history) is
    genuinely per-user and mutable, so each session serialises its turns
    behind a private lock.  Different sessions never contend.
    """

    muve: Muve
    prior_strength: float = 0.3
    prior: QueryLogPrior = field(init=False)
    _history: list[MuveResponse] = field(init=False, default_factory=list)
    _lock: threading.RLock = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.prior = QueryLogPrior(strength=self.prior_strength)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------

    def ask(self, text: str,
            strategy: ProcessingStrategy | None = None) -> MuveResponse:
        """One turn: candidates re-weighted by this session's history."""
        with trace_span("session.turn"):
            response = self.muve.ask(text, strategy=strategy)
            with self._lock:
                response = self._apply_prior(response)
                self._history.append(response)
            return response

    def ask_voice(self, utterance: str,
                  strategy: ProcessingStrategy | None = None,
                  ) -> MuveResponse:
        with trace_span("session.turn"):
            response = self.muve.ask_voice(utterance, strategy=strategy)
            with self._lock:
                response = self._apply_prior(response)
                self._history.append(response)
            return response

    def confirm(self, query: AggregateQuery) -> None:
        """The user clicked *query*'s bar: log it for future turns.

        The confirmed query must be displayed in the latest response
        (users can only click what is on screen).
        """
        with self._lock:
            if not self._history:
                raise ReproError(
                    "nothing to confirm: no question asked yet")
            latest = self._history[-1]
            if not latest.multiplot.shows(query):
                raise ReproError(
                    f"query {query.to_sql()!r} is not displayed in the "
                    "latest multiplot")
            self.prior.record(query)

    @property
    def turns(self) -> int:
        with self._lock:
            return len(self._history)

    # ------------------------------------------------------------------

    def _apply_prior(self, response: MuveResponse) -> MuveResponse:
        """Replan with history-adjusted probabilities (when any history
        exists; the first turn passes through unchanged)."""
        if self.prior.num_logged == 0 or self.prior_strength == 0.0:
            return response
        with trace_span("session.replan") as span:
            reweighted = tuple(
                self.prior.reweight(list(response.candidates)))
            problem = MultiplotSelectionProblem(
                reweighted, geometry=self.muve.geometry)
            planning = self.muve.planner.plan(problem)
            updates = tuple(self.muve._executor.run(planning.multiplot))
            span.set_attribute("logged_queries", self.prior.num_logged)
        return MuveResponse(
            utterance=response.utterance,
            transcript=response.transcript,
            seed_query=response.seed_query,
            candidates=reweighted,
            planning=planning,
            updates=updates,
            headline=response.headline,
            geometry=response.geometry,
        )
