"""Multi-turn sessions: MUVE that learns from confirmed results.

A :class:`MuveSession` wraps a :class:`~repro.muve.Muve` instance and a
:class:`~repro.nlq.priors.QueryLogPrior`.  Each turn re-weights the
candidate distribution by what this user has asked before; when the user
clicks a bar (confirming which interpretation was correct), the session
logs it, sharpening future distributions.  This operationalises the
related-work observation that query-log information is complementary to
MUVE's phonetic disambiguation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.problem import MultiplotSelectionProblem
from repro.errors import ReproError
from repro.execution.progressive import ProcessingStrategy
from repro.muve import Muve, MuveResponse
from repro.nlq.priors import QueryLogPrior
from repro.observability import trace_span
from repro.resilience import retry_call
from repro.sqldb.query import AggregateQuery
from repro.testing.faults import fault_point


@dataclass
class MuveSession:
    """A user session: per-user prior over interpretations.

    Parameters
    ----------
    muve:
        The underlying system (shared across sessions is fine — the
        session only owns the prior).
    prior_strength:
        How strongly history shifts the distribution (0 disables).
    max_attempts / retry_backoff_ms / retry_seed:
        Transient-failure policy: each turn's pipeline run is retried
        up to ``max_attempts`` times on
        :class:`~repro.errors.TransientError` with deterministic
        jittered exponential backoff (see :func:`repro.resilience
        .retry_call`).  Non-transient errors and deadline exhaustion
        are never retried.

    Concurrency: the shared :class:`Muve` pipeline needs no lock, but the
    session's own state (the query-log prior and the turn history) is
    genuinely per-user and mutable, so each session serialises access to
    that state behind a private lock.  The lock guards only state reads
    and writes — pipeline work (including the history-based replan) runs
    outside it, so two concurrent turns on one session overlap their
    planning and execution instead of queuing.  Different sessions never
    contend.
    """

    muve: Muve
    prior_strength: float = 0.3
    max_attempts: int = 3
    retry_backoff_ms: float = 25.0
    retry_seed: int = 0
    prior: QueryLogPrior = field(init=False)
    _history: list[MuveResponse] = field(init=False, default_factory=list)
    _lock: threading.RLock = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.prior = QueryLogPrior(strength=self.prior_strength)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------

    def ask(self, text: str,
            strategy: ProcessingStrategy | None = None) -> MuveResponse:
        """One turn: candidates re-weighted by this session's history."""
        with trace_span("session.turn"):
            response = retry_call(
                lambda: self.muve.ask(text, strategy=strategy),
                attempts=self.max_attempts,
                base_delay_ms=self.retry_backoff_ms,
                seed=self.retry_seed, where="session.ask")
            return self._finish_turn(response)

    def ask_voice(self, utterance: str,
                  strategy: ProcessingStrategy | None = None,
                  ) -> MuveResponse:
        with trace_span("session.turn"):
            response = retry_call(
                lambda: self.muve.ask_voice(utterance, strategy=strategy),
                attempts=self.max_attempts,
                base_delay_ms=self.retry_backoff_ms,
                seed=self.retry_seed, where="session.ask_voice")
            return self._finish_turn(response)

    def confirm(self, query: AggregateQuery) -> None:
        """The user clicked *query*'s bar: log it for future turns.

        The confirmed query must be displayed in the latest response
        (users can only click what is on screen).
        """
        with self._lock:
            if not self._history:
                raise ReproError(
                    "nothing to confirm: no question asked yet")
            latest = self._history[-1]
            if not latest.multiplot.shows(query):
                raise ReproError(
                    f"query {query.to_sql()!r} is not displayed in the "
                    "latest multiplot")
            self.prior.record(query)

    @property
    def turns(self) -> int:
        with self._lock:
            return len(self._history)

    # ------------------------------------------------------------------

    def _finish_turn(self, response: MuveResponse) -> MuveResponse:
        """Apply the history prior (outside the lock) and log the turn."""
        response = self._apply_prior(response)
        with self._lock:
            self._history.append(response)
        return response

    def _apply_prior(self, response: MuveResponse) -> MuveResponse:
        """Replan with history-adjusted probabilities (when any history
        exists; the first turn passes through unchanged).

        Only the prior snapshot is taken under the session lock; the
        replan itself (planning plus query execution) runs unlocked so a
        slow replan on one turn does not serialise the session's other
        in-flight turns — the components it uses are thread-safe.
        """
        with self._lock:
            if self.prior.num_logged == 0 or self.prior_strength == 0.0:
                return response
            reweighted = tuple(
                self.prior.reweight(list(response.candidates)))
            num_logged = self.prior.num_logged
        with trace_span("session.replan") as span:
            fault_point("session.replan")
            problem = MultiplotSelectionProblem(
                reweighted, geometry=self.muve.geometry)
            planning = self.muve.planner.plan(problem)
            updates = tuple(self.muve._executor.run(planning.multiplot))
            span.set_attribute("logged_queries", num_logged)
        return MuveResponse(
            utterance=response.utterance,
            transcript=response.transcript,
            seed_query=response.seed_query,
            candidates=reweighted,
            planning=planning,
            updates=updates,
            headline=response.headline,
            geometry=response.geometry,
            degradations=response.degradations,
        )
