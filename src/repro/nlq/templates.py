"""Query templates: the grouping structure behind plots.

Definition 2 of the paper: a plot visualizes results for queries that
"instantiate a common query template with placeholders"; the template is the
plot title, the placeholder substitutions label the x-axis.  Placeholders
may stand for the aggregation function, the aggregation column, one
predicate's constant, or one predicate's column.

A :class:`QueryTemplate` is identified purely by the *fixed* parts of the
query — the varying element is excluded from equality and hashing — so two
candidate queries that differ only in the placeholder slot map to the same
template object.  That identification is the ``T(q)`` function of
Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import PlanningError
from repro.sqldb.expressions import AggregateCall, AggregateFunction
from repro.sqldb.query import AggregateQuery, Predicate

#: Placeholder marker used in rendered template titles.
PLACEHOLDER = "?"

_KINDS = ("agg_func", "agg_column", "pred_value", "pred_column")


@dataclass(frozen=True)
class QueryTemplate:
    """A query shape with exactly one element replaced by a placeholder.

    ``kind`` names the varying element.  The remaining fields hold only the
    *fixed* parts: ``agg_func`` is ``None`` when the function varies,
    ``agg_column`` is ``None`` when the aggregation column varies (or for
    ``COUNT(*)``), and ``anchor`` pins the fixed half of the varying
    predicate (its column for ``pred_value``, its value for
    ``pred_column``).
    """

    kind: str
    table: str
    agg_func: AggregateFunction | None
    agg_column: str | None
    fixed_predicates: tuple[Predicate, ...]
    anchor: Any = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown template kind {self.kind!r}")

    # ------------------------------------------------------------------
    # Relationship to queries
    # ------------------------------------------------------------------

    def matches(self, query: AggregateQuery) -> bool:
        """True when *query* instantiates this template."""
        return self in set(templates_of(query))

    def x_label(self, query: AggregateQuery) -> str:
        """The x-axis label of *query*'s bar in a plot of this template
        (i.e. the placeholder substitution)."""
        if self.kind == "agg_func":
            return query.aggregate.func.value.upper()
        if self.kind == "agg_column":
            return query.aggregate.column or "*"
        varying = self._varying_predicate(query)
        if self.kind == "pred_value":
            return str(varying.value)
        return varying.column

    def _varying_predicate(self, query: AggregateQuery) -> Predicate:
        fixed = set(self.fixed_predicates)
        extras = [p for p in query.predicates if p not in fixed]
        if len(extras) != 1 or not fixed <= set(query.predicates):
            raise PlanningError(
                f"query {query.to_sql()!r} does not instantiate "
                f"template {self.title()!r}")
        return extras[0]

    def instantiate(self, substitution: Any) -> AggregateQuery:
        """Fill the placeholder with *substitution*, yielding a query."""
        if self.kind == "agg_func":
            func = AggregateFunction(str(substitution).lower())
            if self.agg_column is None and func != AggregateFunction.COUNT:
                raise PlanningError(
                    f"{func.value.upper()}(*) is not a valid substitution")
            call = AggregateCall(func, self.agg_column)
            return AggregateQuery(self.table, call, self.fixed_predicates)
        if self.kind == "agg_column":
            assert self.agg_func is not None
            call = AggregateCall(self.agg_func, str(substitution))
            return AggregateQuery(self.table, call, self.fixed_predicates)
        assert self.agg_func is not None
        call = AggregateCall(self.agg_func, self.agg_column)
        if self.kind == "pred_value":
            predicate = Predicate(str(self.anchor), substitution)
        else:  # pred_column
            predicate = Predicate(str(substitution), self.anchor)
        return AggregateQuery(self.table, call,
                              self.fixed_predicates + (predicate,))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def title(self) -> str:
        """Human-readable plot title with the placeholder marked."""
        func_text = (PLACEHOLDER if self.agg_func is None
                     else self.agg_func.value.upper())
        if self.kind == "agg_column":
            column_text = PLACEHOLDER
        else:
            column_text = self.agg_column or "*"
        head = f"{func_text}({column_text})"
        rendered: list[str] = [p.to_sql() for p in self.fixed_predicates]
        if self.kind == "pred_value":
            rendered.append(f"{self.anchor} = {PLACEHOLDER}")
        elif self.kind == "pred_column":
            rendered.append(f"{PLACEHOLDER} = "
                            f"{_render_value(self.anchor)}")
        if not rendered:
            return head
        return f"{head} WHERE {' AND '.join(sorted(rendered))}"


def _render_value(value: Any) -> str:
    if isinstance(value, str):
        return f"'{value}'"
    return str(value)


def templates_of(query: AggregateQuery) -> Iterator[QueryTemplate]:
    """All templates a query instantiates — ``T(q)`` in Algorithm 2.

    We introduce a placeholder for exactly one element at a time (the paper
    introduces placeholders "for a limited number of elements"; plots with
    multiple placeholders would need multi-dimensional axes).
    """
    yield QueryTemplate(
        kind="agg_func",
        table=query.table,
        agg_func=None,
        agg_column=query.aggregate.column,
        fixed_predicates=query.predicates,
    )
    if query.aggregate.column is not None:
        yield QueryTemplate(
            kind="agg_column",
            table=query.table,
            agg_func=query.aggregate.func,
            agg_column=None,
            fixed_predicates=query.predicates,
        )
    for index, predicate in enumerate(query.predicates):
        others = (query.predicates[:index] + query.predicates[index + 1:])
        yield QueryTemplate(
            kind="pred_value",
            table=query.table,
            agg_func=query.aggregate.func,
            agg_column=query.aggregate.column,
            fixed_predicates=others,
            anchor=predicate.column,
        )
        yield QueryTemplate(
            kind="pred_column",
            table=query.table,
            agg_func=query.aggregate.func,
            agg_column=query.aggregate.column,
            fixed_predicates=others,
            anchor=predicate.value,
        )
