"""Deterministic keyword-pattern text-to-SQL — the SQLova stand-in.

MUVE treats text-to-SQL as a black box that yields the single most likely
query for a transcript; ambiguity handling happens downstream in candidate
generation.  This translator covers the supported query class (one aggregate
plus equality predicates on one table) with a transparent algorithm:

1. an aggregate keyword ("average", "total", "count", "highest"...) picks
   the function,
2. the tokens after it are fuzzily matched against numeric column names to
   pick the aggregation column,
3. clauses after "for"/"where"/"with", split on "and", are matched as
   ``<column phrase> [is] <value phrase>`` pairs against text columns and
   their distinct values.

All fuzzy matching uses the same phonetic similarity as candidate
generation, so a noisy transcript still resolves to a plausible seed query.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import CandidateGenerationError
from repro.phonetics.index import phonetic_similarity
from repro.sqldb.database import Database
from repro.sqldb.expressions import AggregateCall, AggregateFunction
from repro.sqldb.query import AggregateQuery, Predicate

_AGG_KEYWORDS = {
    "average": AggregateFunction.AVG,
    "avg": AggregateFunction.AVG,
    "mean": AggregateFunction.AVG,
    "total": AggregateFunction.SUM,
    "sum": AggregateFunction.SUM,
    "count": AggregateFunction.COUNT,
    "number": AggregateFunction.COUNT,
    "many": AggregateFunction.COUNT,
    "maximum": AggregateFunction.MAX,
    "max": AggregateFunction.MAX,
    "highest": AggregateFunction.MAX,
    "largest": AggregateFunction.MAX,
    "minimum": AggregateFunction.MIN,
    "min": AggregateFunction.MIN,
    "lowest": AggregateFunction.MIN,
    "smallest": AggregateFunction.MIN,
}

_CLAUSE_SPLITTERS = ("for", "where", "with", "when")
_NOISE_WORDS = frozenset({
    "what", "whats", "is", "the", "of", "show", "me", "a", "an", "in",
    "rows", "records", "entries", "how",
})
_EQUALS_WORDS = frozenset({"is", "equals", "equal", "being", "of"})

_MIN_MATCH_SIMILARITY = 0.55


@dataclass(frozen=True)
class _Match:
    """A fuzzy match of a token span against a vocabulary entry."""

    target: str
    score: float


class TextToSql:
    """Translates one natural-language request into one AggregateQuery."""

    def __init__(self, database: Database, table_name: str,
                 max_values_per_column: int = 2000) -> None:
        self._table_name = database.table(table_name).schema.name
        table = database.table(table_name)
        self._numeric_columns = [c.name
                                 for c in table.schema.numeric_columns()]
        self._text_columns = [c.name for c in table.schema.text_columns()]
        import numpy as np
        self._values_by_column: dict[str, list[str]] = {
            name: np.unique(table.column(name)).tolist()
                  [:max_values_per_column]
            for name in self._text_columns
        }

    # ------------------------------------------------------------------

    def translate_trend(self, text: str) -> tuple[AggregateQuery, str]:
        """Translate a trend question ("... by month" / "... per month").

        Splits off the trailing ``by/per <column>`` phrase, resolves it
        against all columns, and translates the remainder as usual.
        Raises :class:`CandidateGenerationError` when no grouping phrase
        is present or it matches no column.
        """
        tokens = _tokenize(text)
        split_at = None
        for index in range(len(tokens) - 1, 0, -1):
            if tokens[index] in ("by", "per"):
                split_at = index
                break
        if split_at is None or split_at == len(tokens) - 1:
            raise CandidateGenerationError(
                "trend questions need a trailing 'by <column>' phrase")
        group_phrase = " ".join(tokens[split_at + 1:])
        all_columns = self._text_columns + self._numeric_columns
        match = _best_match(group_phrase, all_columns)
        if match is None or match.score < _MIN_MATCH_SIMILARITY:
            raise CandidateGenerationError(
                f"cannot resolve grouping phrase {group_phrase!r} to a "
                "column")
        head_text = " ".join(tokens[:split_at])
        return self.translate(head_text), match.target

    def translate(self, text: str) -> AggregateQuery:
        """Translate *text*; raises CandidateGenerationError if hopeless."""
        tokens = _tokenize(text)
        if not tokens:
            raise CandidateGenerationError("empty input text")

        func, func_index = self._find_aggregate(tokens)
        head, clauses = _split_clauses(tokens)

        column: str | None = None
        if func != AggregateFunction.COUNT:
            column = self._find_aggregate_column(head, func_index)
            if column is None:
                if not self._numeric_columns:
                    raise CandidateGenerationError(
                        f"table {self._table_name!r} has no numeric column "
                        f"to aggregate")
                column = self._numeric_columns[0]

        predicates = tuple(self._parse_clause(clause) for clause in clauses)
        predicates = tuple(p for p in predicates if p is not None)
        return AggregateQuery(self._table_name,
                              AggregateCall(func, column), predicates)

    # ------------------------------------------------------------------

    def _find_aggregate(self, tokens: list[str],
                        ) -> tuple[AggregateFunction, int]:
        for index, token in enumerate(tokens):
            if token in _AGG_KEYWORDS:
                return _AGG_KEYWORDS[token], index
        # No keyword: fuzzy-match each token against the keyword list.
        best: tuple[float, AggregateFunction, int] | None = None
        for index, token in enumerate(tokens):
            for keyword, func in _AGG_KEYWORDS.items():
                score = phonetic_similarity(token, keyword)
                if score >= 0.85 and (best is None or score > best[0]):
                    best = (score, func, index)
        if best is not None:
            return best[1], best[2]
        return AggregateFunction.COUNT, -1

    def _find_aggregate_column(self, head_tokens: list[str],
                               func_index: int) -> str | None:
        """Match spans after the aggregate keyword to numeric columns."""
        start = func_index + 1 if 0 <= func_index < len(head_tokens) else 0
        candidates = [t for t in head_tokens[start:]
                      if t not in _NOISE_WORDS]
        best: _Match | None = None
        for span in _spans(candidates, max_len=3):
            match = _best_match(span, self._numeric_columns)
            if match and (best is None or match.score > best.score):
                best = match
        if best and best.score >= _MIN_MATCH_SIMILARITY:
            return best.target
        return None

    def _parse_clause(self, clause: list[str]) -> Predicate | None:
        """Interpret one ``<column> [is] <value>`` clause."""
        tokens = [t for t in clause if t]
        if not tokens:
            return None
        best: tuple[float, Predicate] | None = None
        for split in range(1, len(tokens)):
            column_tokens = tokens[:split]
            value_tokens = tokens[split:]
            if value_tokens and value_tokens[0] in _EQUALS_WORDS:
                value_tokens = value_tokens[1:]
            if not value_tokens:
                continue
            column_match = _best_match(" ".join(column_tokens),
                                       self._text_columns)
            if column_match is None:
                continue
            values = self._values_by_column[column_match.target]
            value_match = _best_match(" ".join(value_tokens), values)
            if value_match is None:
                continue
            score = column_match.score * value_match.score
            if (column_match.score >= _MIN_MATCH_SIMILARITY
                    and value_match.score >= _MIN_MATCH_SIMILARITY
                    and (best is None or score > best[0])):
                best = (score,
                        Predicate(column_match.target, value_match.target))
        if best is not None:
            return best[1]
        # Value-only clause ("for Brooklyn"): find the column by value.
        best_value: tuple[float, Predicate] | None = None
        phrase = " ".join(t for t in tokens if t not in _EQUALS_WORDS)
        for column, values in self._values_by_column.items():
            match = _best_match(phrase, values)
            if match and match.score >= _MIN_MATCH_SIMILARITY:
                if best_value is None or match.score > best_value[0]:
                    best_value = (match.score,
                                  Predicate(column, match.target))
        return best_value[1] if best_value else None


# ---------------------------------------------------------------------------


def _tokenize(text: str) -> list[str]:
    return [t for t in re.split(r"[^a-z0-9_]+", text.lower()) if t]


def _split_clauses(tokens: list[str]) -> tuple[list[str], list[list[str]]]:
    """Split into the head (aggregate part) and predicate clauses."""
    split_at = len(tokens)
    for index, token in enumerate(tokens):
        if token in _CLAUSE_SPLITTERS:
            split_at = index
            break
    head = [t for t in tokens[:split_at] if t not in _NOISE_WORDS]
    rest = tokens[split_at + 1:] if split_at < len(tokens) else []
    clauses: list[list[str]] = []
    current: list[str] = []
    for token in rest:
        if token == "and" or token in _CLAUSE_SPLITTERS:
            if current:
                clauses.append(current)
            current = []
        else:
            current.append(token)
    if current:
        clauses.append(current)
    return head, clauses


def _spans(tokens: list[str], max_len: int) -> list[str]:
    """All contiguous token spans up to *max_len*, joined with spaces."""
    spans = []
    for start in range(len(tokens)):
        for end in range(start + 1, min(start + max_len, len(tokens)) + 1):
            spans.append(" ".join(tokens[start:end]))
    return spans


def _best_match(phrase: str, vocabulary: list[str]) -> _Match | None:
    """Best phonetic match of *phrase* against *vocabulary* entries.

    Column names are normalised (underscores become spaces) before
    comparison so spoken "resolution hours" hits ``resolution_hours``.
    """
    if not phrase or not vocabulary:
        return None
    best_target: str | None = None
    best_score = -1.0
    for entry in vocabulary:
        normalised = str(entry).replace("_", " ").lower()
        score = phonetic_similarity(phrase, normalised)
        if score > best_score:
            best_score = score
            best_target = entry
    if best_target is None:
        return None
    return _Match(target=best_target, score=best_score)
