"""Query-log priors for candidate probabilities (related-work extension).

The paper's related work points at approaches that reduce ambiguity "by
considering more information (e.g., query logs)" and calls them
complementary.  :class:`QueryLogPrior` implements the natural combination:
candidate probabilities from phonetic similarity are re-weighted by how
often structurally similar queries were asked before, then renormalised.

The prior is deliberately simple and fully inspectable: each logged query
contributes counts for its aggregate call and each of its predicates; a
candidate's prior score is a smoothed product of its elements' relative
frequencies.  ``strength`` interpolates between pure phonetics (0) and
pure history (1).
"""

from __future__ import annotations

from collections import Counter

from repro.errors import CandidateGenerationError
from repro.nlq.candidates import CandidateQuery
from repro.sqldb.query import AggregateQuery


class QueryLogPrior:
    """Frequency statistics over previously issued queries."""

    def __init__(self, strength: float = 0.3,
                 smoothing: float = 1.0) -> None:
        if not 0.0 <= strength <= 1.0:
            raise CandidateGenerationError(
                "prior strength must be within [0, 1]")
        if smoothing <= 0.0:
            raise CandidateGenerationError("smoothing must be positive")
        self.strength = strength
        self.smoothing = smoothing
        self._aggregate_counts: Counter = Counter()
        self._predicate_counts: Counter = Counter()
        self._num_logged = 0

    # ------------------------------------------------------------------

    def record(self, query: AggregateQuery) -> None:
        """Log one issued query (call this when the user confirms a
        result, e.g. by clicking its bar)."""
        self._aggregate_counts[query.aggregate] += 1
        for predicate in query.predicates:
            self._predicate_counts[(predicate.column,
                                    predicate.value)] += 1
        self._num_logged += 1

    @property
    def num_logged(self) -> int:
        return self._num_logged

    # ------------------------------------------------------------------

    def score(self, query: AggregateQuery) -> float:
        """Smoothed relative-frequency score in (0, 1]."""
        denominator = self._num_logged + self.smoothing
        score = ((self._aggregate_counts[query.aggregate]
                  + self.smoothing) / denominator)
        for predicate in query.predicates:
            score *= ((self._predicate_counts[(predicate.column,
                                               predicate.value)]
                       + self.smoothing) / denominator)
        return min(1.0, score)

    def reweight(self, candidates: list[CandidateQuery],
                 ) -> list[CandidateQuery]:
        """Candidates re-weighted by history and renormalised.

        Each probability becomes ``p^(1-s) * prior^s`` (a log-linear
        mixture), keeping the ranking stable when the log is empty.
        """
        if not candidates:
            return []
        strength = self.strength
        weights = [
            (candidate.probability ** (1.0 - strength))
            * (self.score(candidate.query) ** strength)
            for candidate in candidates
        ]
        total = sum(weights)
        if total <= 0.0:
            return list(candidates)
        reweighted = [CandidateQuery(candidate.query, weight / total)
                      for candidate, weight in zip(candidates, weights)]
        reweighted.sort(key=lambda c: (-c.probability, c.query.to_sql()))
        return reweighted
