"""A phonetically plausible noisy channel — the speech-recognition stand-in.

The real MUVE transcribes microphone input with the browser Web Speech API,
whose errors are the root cause of the ambiguity MUVE fights.  Offline we
simulate that channel: each word of the true utterance is, with some
probability, replaced by a phonetically similar word drawn from a confusion
vocabulary (weighted by similarity), or perturbed at the character level
when no confusable neighbour exists.  The output is exactly the error class
the candidate generator targets, so the end-to-end pipeline (speak ->
mis-transcribe -> translate -> recover via multiplot) is exercised for real.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.phonetics.index import PhoneticIndex
from repro.resilience import current_deadline
from repro.testing.faults import fault_point

_ADJACENT_KEYS = {
    "a": "qs", "b": "vn", "c": "xv", "d": "sf", "e": "wr", "f": "dg",
    "g": "fh", "h": "gj", "i": "uo", "j": "hk", "k": "jl", "l": "k",
    "m": "n", "n": "bm", "o": "ip", "p": "o", "q": "wa", "r": "et",
    "s": "ad", "t": "ry", "u": "yi", "v": "cb", "w": "qe", "x": "zc",
    "y": "tu", "z": "x",
}


class SpeechSimulator:
    """Corrupts utterances with phonetically plausible recognition errors.

    Parameters
    ----------
    vocabulary:
        Words/phrases the recogniser could plausibly output (typically the
        database vocabulary plus common function words).
    word_error_rate:
        Probability that any given word is mis-recognised.
    seed:
        RNG seed; every simulator with the same seed and inputs produces
        the same transcripts.

    The noise generator is derived per utterance from ``(seed,
    utterance)`` rather than drawn from one sequential stream, so
    :meth:`transcribe` is a pure function: the same utterance always gets
    the same transcript regardless of call order or the thread it runs on.
    That is what makes voice questions cacheable and concurrent runs
    reproducible.
    """

    def __init__(self, vocabulary: Iterable[str],
                 word_error_rate: float = 0.15,
                 deletion_rate: float = 0.0,
                 insertion_rate: float = 0.0,
                 seed: int = 0) -> None:
        for name, rate in (("word_error_rate", word_error_rate),
                           ("deletion_rate", deletion_rate),
                           ("insertion_rate", insertion_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        self._index = PhoneticIndex()
        self._words: list[str] = []
        for phrase in vocabulary:
            for word in str(phrase).split():
                lowered = word.lower()
                if lowered not in self._index:
                    self._words.append(lowered)
                self._index.add(lowered)
        self.word_error_rate = word_error_rate
        self.deletion_rate = deletion_rate
        self.insertion_rate = insertion_rate
        self._seed = seed

    def transcribe(self, utterance: str) -> str:
        """Simulate recognising *utterance*; returns the noisy transcript.

        Per word: with ``deletion_rate`` the word is dropped entirely
        (clipped audio); otherwise with ``word_error_rate`` it is replaced
        by a phonetically similar confusion; with ``insertion_rate`` a
        spurious vocabulary word is hallucinated after it.
        """
        fault_point("speech.transcribe")
        deadline = current_deadline()
        if deadline is not None:
            deadline.check("speech.transcribe")
        from repro.sqldb.sampling import derive_rng
        rng = derive_rng(self._seed, "speech", utterance)
        words = utterance.split()
        output: list[str] = []
        for word in words:
            if self.deletion_rate and rng.random() < \
                    self.deletion_rate:
                continue
            if rng.random() < self.word_error_rate:
                output.append(self._confuse(word, rng))
            else:
                output.append(word)
            if (self.insertion_rate and self._words
                    and rng.random() < self.insertion_rate):
                output.append(self._words[
                    int(rng.integers(len(self._words)))])
        return " ".join(output)

    def _confuse(self, word: str, rng: np.random.Generator) -> str:
        """One mis-recognition of *word*."""
        neighbours = [st for st in self._index.most_similar(
            word.lower(), k=8, include_self=False) if st.score >= 0.6]
        if neighbours:
            weights = np.array([st.score ** 4 for st in neighbours])
            weights /= weights.sum()
            choice = rng.choice(len(neighbours), p=weights)
            replacement = neighbours[int(choice)].term
            return _match_case(word, replacement)
        return self._typo(word, rng)

    def _typo(self, word: str, rng: np.random.Generator) -> str:
        """Character-level fallback noise for out-of-vocabulary words."""
        if len(word) < 2:
            return word
        position = int(rng.integers(len(word)))
        ch = word[position].lower()
        candidates = _ADJACENT_KEYS.get(ch, "")
        if not candidates:
            return word
        replacement = candidates[int(rng.integers(len(candidates)))]
        if word[position].isupper():
            replacement = replacement.upper()
        return word[:position] + replacement + word[position + 1:]


def _match_case(original: str, replacement: str) -> str:
    """Carry the original word's capitalisation onto the replacement."""
    if original.isupper():
        return replacement.upper()
    if original[:1].isupper():
        return replacement.capitalize()
    return replacement


def build_default_vocabulary(terms: Sequence[str]) -> list[str]:
    """Database vocabulary plus the function words users speak in queries."""
    function_words = [
        "what", "is", "the", "average", "total", "sum", "count", "number",
        "of", "maximum", "minimum", "highest", "lowest", "for", "where",
        "with", "and", "in", "show", "me",
    ]
    return list(terms) + function_words
