"""Text-to-multi-SQL: candidate queries with probabilities (Section 3).

Starting from the seed query produced by text-to-SQL, MUVE "iterates over
all schema element names and constants that appear in the query", looks up
the k most phonetically similar entries for each element, and derives
candidate queries by substituting those alternatives.  The probability of a
single replacement is based on phonetic similarity (Double Metaphone +
Jaro-Winkler); the probability of multiple replacements is the product of
the single-replacement probabilities.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.caching.lru import LruCache
from repro.caching.phonetic import phonetic_probe_cache
from repro.errors import (
    CandidateGenerationError,
    DeadlineExceeded,
    TransientError,
)
from repro.observability.workload import get_workload_analytics
from repro.phonetics.index import PhoneticIndex, phonetic_similarity
from repro.resilience import (
    current_deadline,
    exception_reason,
    record_degradation,
)
from repro.testing.faults import fault_point
from repro.sqldb.database import Database
from repro.sqldb.expressions import AggregateFunction
from repro.sqldb.query import AggregateQuery, QueryElement

#: Spoken forms of the aggregate functions, used for phonetic comparison.
_SPOKEN_AGG = {
    AggregateFunction.AVG: "average",
    AggregateFunction.SUM: "total sum",
    AggregateFunction.COUNT: "count",
    AggregateFunction.MIN: "minimum",
    AggregateFunction.MAX: "maximum",
}


@dataclass(frozen=True)
class CandidateQuery:
    """Definition 1 of the paper: a query the voice input may translate to,
    with the system's confidence that it matches the user's intent."""

    query: AggregateQuery
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise CandidateGenerationError(
                f"probability {self.probability} outside [0, 1]")


@dataclass(frozen=True)
class _Alternative:
    """One possible substitution for one query element."""

    element_index: int
    replacement: object
    weight: float


@dataclass(frozen=True)
class _IndexBundle:
    """The phonetic indexes for one (database, table, vocabulary) state.

    Built once per distinct ``Database.vocabulary_version`` and shared by
    every :class:`CandidateGenerator` over the same table — index
    construction is the expensive part of generator construction, and the
    indexes are immutable once built (mutations to the database bump the
    version, which keys a *new* bundle instead of mutating this one).
    """

    numeric_index: PhoneticIndex
    text_column_index: PhoneticIndex
    value_indexes: Mapping[str, PhoneticIndex]


#: (database.uid, table, vocabulary_version) -> _IndexBundle, shared
#: process-wide with single-flight construction.  Sized for a handful of
#: live (database, table) pairs; superseded versions age out via LRU.
_index_bundles = LruCache(16)


def index_bundle_cache() -> LruCache:
    """The process-wide bundle cache (stats surface via ``/api/stats``)."""
    return _index_bundles


def reset_index_bundles() -> None:
    """Drop all cached index bundles (test isolation)."""
    _index_bundles.clear()


def _build_bundle(database: Database, table_name: str) -> _IndexBundle:
    import numpy as np
    table = database.table(table_name)
    numeric_index = PhoneticIndex(
        c.name for c in table.schema.numeric_columns())
    text_column_index = PhoneticIndex(
        c.name for c in table.schema.text_columns())
    value_indexes: dict[str, PhoneticIndex] = {}
    for column in table.schema.text_columns():
        values = np.unique(table.column(column.name)).tolist()
        value_indexes[column.name] = PhoneticIndex(values)
    return _IndexBundle(numeric_index=numeric_index,
                        text_column_index=text_column_index,
                        value_indexes=MappingProxyType(value_indexes))


def _index_bundle(database: Database, table_name: str) -> _IndexBundle:
    key = (database.uid, table_name.lower(), database.vocabulary_version)
    return _index_bundles.get_or_compute(
        key, lambda: _build_bundle(database, table_name))


class CandidateGenerator:
    """Expands a seed query into a probability distribution over candidates.

    Parameters
    ----------
    database / table_name:
        Where to find the vocabulary of plausible substitutions (column
        names and distinct text values).
    k:
        How many phonetically similar alternatives to retrieve per element
        (the paper "typically sets k to 20").
    sharpness:
        Exponent applied to similarity scores when converting them to
        replacement weights; larger values concentrate probability mass on
        the closest-sounding alternatives.
    replacement_penalty:
        Prior odds of any single element having been mis-recognised,
        relative to keeping the original (weight of the original is 1).
    max_simultaneous:
        Maximum number of elements replaced at once.  Probability decays
        with the product rule, so two is usually plenty.
    """

    def __init__(self, database: Database, table_name: str, k: int = 20,
                 sharpness: float = 6.0, replacement_penalty: float = 0.4,
                 max_simultaneous: int = 2,
                 vary_aggregate_function: bool = True) -> None:
        if k <= 0:
            raise CandidateGenerationError("k must be positive")
        self._database = database
        self._table_name = database.table(table_name).schema.name
        self._k = k
        self._sharpness = sharpness
        self._replacement_penalty = replacement_penalty
        self._max_simultaneous = max(1, max_simultaneous)
        self._vary_aggregate_function = vary_aggregate_function
        # Warm (or share) the per-vocabulary-version index bundle so the
        # first candidates() call is not the one paying construction.
        self._bundle()

    def _bundle(self) -> _IndexBundle:
        """The index bundle for the database's *current* vocabulary.

        Resolved per call: a mutation bumps ``vocabulary_version``, so the
        next request transparently builds (or picks up) fresh indexes
        instead of serving rankings over a stale vocabulary.
        """
        return _index_bundle(self._database, self._table_name)

    # ------------------------------------------------------------------

    def candidates(self, seed: AggregateQuery,
                   max_candidates: int = 20) -> list[CandidateQuery]:
        """The *max_candidates* most likely interpretations of *seed*.

        The seed itself is always included (it is the most likely single
        candidate).  Probabilities are normalised to sum to one over the
        returned set, matching the "probability distribution over query
        candidates" the visualization planner consumes.
        """
        if max_candidates <= 0:
            raise CandidateGenerationError("max_candidates must be positive")
        elements = list(seed.elements())
        alternatives = self._collect_alternatives(seed, elements)

        weighted: dict[AggregateQuery, float] = {seed: 1.0}
        for count in range(1, self._max_simultaneous + 1):
            for combo in self._element_combinations(alternatives, count):
                query = seed
                weight = 1.0
                for alternative in combo:
                    element = elements[alternative.element_index]
                    query = query.replace_element(element,
                                                  alternative.replacement)
                    weight *= alternative.weight
                if query == seed:
                    continue
                existing = weighted.get(query, 0.0)
                if weight > existing:
                    weighted[query] = weight

        top = heapq.nlargest(max_candidates, weighted.items(),
                             key=lambda item: (item[1],
                                               item[0].to_sql()))
        total = sum(weight for _, weight in top)
        return [CandidateQuery(query, weight / total)
                for query, weight in top]

    # ------------------------------------------------------------------

    def _collect_alternatives(self, seed: AggregateQuery,
                              elements: list[QueryElement],
                              ) -> list[list[_Alternative]]:
        """Alternatives per element, indexed like *elements*."""
        bundle = self._bundle()
        per_element: list[list[_Alternative]] = []
        truncated = False
        for index, element in enumerate(elements):
            if not truncated:
                deadline = current_deadline()
                if deadline is not None and deadline.expired:
                    # Deadline blown mid-generation: stop probing and
                    # leave the remaining elements without alternatives
                    # (the seed itself is always a candidate).
                    record_degradation(
                        "phonetics", "alternatives_truncated", "deadline",
                        detail=f"stopped at element {index}/"
                               f"{len(elements)}")
                    truncated = True
            if truncated:
                per_element.append([])
                continue
            if element.kind == "agg_func":
                per_element.append(
                    self._aggregate_alternatives(seed, index))
            elif element.kind == "agg_column":
                per_element.append(self._index_alternatives(
                    bundle.numeric_index, element, index))
            elif element.kind == "pred_column":
                per_element.append(self._index_alternatives(
                    bundle.text_column_index, element, index))
            else:  # pred_value
                predicate = seed.predicates[element.position]
                value_index = bundle.value_indexes.get(predicate.column)
                if value_index is None:
                    per_element.append([])
                else:
                    per_element.append(self._index_alternatives(
                        value_index, element, index))
        return per_element

    def _aggregate_alternatives(self, seed: AggregateQuery,
                                element_index: int) -> list[_Alternative]:
        if not self._vary_aggregate_function:
            return []
        current = seed.aggregate.func
        spoken = _SPOKEN_AGG[current]
        alternatives = []
        for func, spoken_alt in _SPOKEN_AGG.items():
            if func == current:
                continue
            if seed.aggregate.column is None and func != AggregateFunction.COUNT:
                continue  # SUM(*) etc. is invalid
            if func.requires_numeric and seed.aggregate.column is None:
                continue
            similarity = phonetic_similarity(spoken, spoken_alt)
            weight = self._weight(similarity)
            if weight > 0.0:
                alternatives.append(
                    _Alternative(element_index, func.value, weight))
        return alternatives

    def _index_alternatives(self, index: PhoneticIndex,
                            element: QueryElement,
                            element_index: int) -> list[_Alternative]:
        try:
            fault_point("phonetics.lookup")
            deadline = current_deadline()
            if deadline is not None:
                deadline.check("phonetics.lookup")
            ranked = phonetic_probe_cache().most_similar(
                index, element.text, self._k, include_self=False)
            # What vocabulary the traffic actually probes — the
            # workload-analytics stream behind ``GET /api/workload``.
            get_workload_analytics().record_probe(element.text)
        except (DeadlineExceeded, TransientError) as exc:
            # One failed lookup costs this element its alternatives, not
            # the whole request: the other elements (and the seed query)
            # still produce a usable candidate distribution.
            record_degradation("phonetics", "alternatives_skipped",
                               exception_reason(exc),
                               detail=element.text)
            return []
        alternatives = []
        for scored in ranked:
            weight = self._weight(scored.score)
            if weight > 0.0:
                alternatives.append(
                    _Alternative(element_index, scored.term, weight))
        return alternatives

    def _weight(self, similarity: float) -> float:
        """Replacement weight from a similarity score (original has 1.0)."""
        return self._replacement_penalty * (similarity ** self._sharpness)

    @staticmethod
    def _element_combinations(alternatives: list[list[_Alternative]],
                              count: int):
        """All ways to pick *count* alternatives from distinct elements."""
        indices = [i for i, alts in enumerate(alternatives) if alts]
        for chosen in itertools.combinations(indices, count):
            pools = [alternatives[i] for i in chosen]
            yield from itertools.product(*pools)
