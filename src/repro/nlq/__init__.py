"""Voice-input substrate: speech noise, text-to-SQL, and text-to-multi-SQL.

The paper's pipeline is: Web Speech API transcribes voice to text; SQLova
maps text to the single most likely SQL query; MUVE then expands that seed
query into a *probability distribution over candidate queries* by replacing
schema elements and constants with phonetically similar alternatives.  This
package supplies each stage:

* :class:`SpeechSimulator` — a phonetically plausible noisy channel standing
  in for real speech recognition.
* :class:`TextToSql` — a deterministic keyword-pattern translator standing
  in for SQLova (covers the supported query class: one aggregate plus
  equality predicates on one table).
* :class:`CandidateGenerator` — the text-to-multi-SQL step, faithful to
  Section 3: Double Metaphone + Jaro-Winkler similarity, k most similar
  alternatives per element, product probabilities over replacements.
* :mod:`repro.nlq.templates` — query templates ``T(q)`` (Algorithm 2): the
  grouping structure that decides which queries can share a plot.
"""

from repro.nlq.candidates import CandidateGenerator, CandidateQuery
from repro.nlq.speech import SpeechSimulator
from repro.nlq.templates import QueryTemplate, templates_of
from repro.nlq.text_to_sql import TextToSql

__all__ = [
    "CandidateGenerator",
    "CandidateQuery",
    "QueryTemplate",
    "SpeechSimulator",
    "TextToSql",
    "templates_of",
]
