"""The browser demo — what the SIGMOD demonstration shows.

A dependency-free HTTP server (standard-library ``http.server``) exposing
the MUVE pipeline to a browser: type or "speak" a question, get back the
multiplot as inline SVG with the candidate-interpretation distribution
alongside (the layout of the paper's Figure 2).

::

    from repro.demo import MuveDemoServer
    server = MuveDemoServer(muve)
    server.start()           # serves on http://127.0.0.1:<port>/
"""

from repro.demo.server import MuveDemoServer

__all__ = ["MuveDemoServer"]
