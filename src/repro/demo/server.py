"""The demo HTTP server (standard library only).

Endpoints:

* ``GET /`` — the single-page UI.
* ``GET /api/schema`` — table name and columns (for autocomplete/help).
* ``GET /api/stats`` — cache hit/miss counters of the serving path.
* ``GET /api/metrics`` — the process metrics registry: JSON snapshot by
  default, the Prometheus text exposition format with
  ``?format=prometheus``.
* ``GET /api/traces`` — the most recent request traces from the ring
  buffer (``?n=`` limits, ``?format=jsonl`` emits one trace per line).
* ``GET /api/slo`` — burn-rate report of the serving objectives
  (latency, error rate, truth coverage) over the fast/slow windows.
* ``GET /api/workload`` — what the traffic asks: top query templates
  and vocabulary probes from the sliding-window sketches (``?n=``
  limits).
* ``GET /api/quality`` — the ``quality_*`` instrument family distilled
  (coverage, costs, optimality gap, intended-query outcomes).
* ``GET /dashboard`` — the three reports above plus cache stats as one
  server-rendered HTML page (no JS; refresh to update).
* ``POST /api/ask`` — body ``{"question": str, "voice": bool,
  "trend": bool}``; returns transcript, seed SQL, planner info, the
  candidate distribution, the rendered SVG and the terminal rendering.
  With ``?trace=1`` (or ``"trace": true`` in the body) the response also
  carries the full span tree of its own execution under ``"trace"``;
  traced requests bypass the response cache so the tree reflects real
  pipeline work.  With ``?deadline_ms=`` (or ``"deadline_ms"`` in the
  body) the ask runs under that latency budget and may answer degraded
  (``"degraded": true`` plus the ``"degradations"`` events); such
  requests bypass the response cache too.  Error responses carry a
  machine-readable ``error_type``; when more than ``max_inflight`` asks
  are in flight, new ones are shed with 429 + ``Retry-After``.

The server runs on a background thread (``ThreadingHTTPServer``) and
handles requests **concurrently**: the MUVE pipeline is thread-safe
(randomness is derived per call, lazy caches are locked, planner and
executor hold no per-request state), so no server-wide lock is needed.
Answers are additionally memoised in a response cache keyed on
``(question, voice, trend)`` — the pipeline is deterministic per question,
so a repeated question is served straight from memory, and a stampede of
identical questions computes once (single-flight).

Every request — including ones that fail — is measured into the metrics
registry (``http_request_ms``, ``http_requests``, ``errors``), and with
``access_log=True`` each is also written as one JSON line (method, path,
status, duration) to the configured stream.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.caching import LruCache
from repro.demo.page import PAGE, render_dashboard
from repro.errors import OverloadedError, ReproError
from repro.muve import Muve
from repro.observability import (
    StructuredLogger,
    get_trace_log,
    get_workload_analytics,
    quality_summary,
    trace_span,
)
from repro.resilience import AdmissionController, deadline_scope
from repro.testing.faults import active_fault_plan

#: The single route table: ``(method, path) -> Handler method name``.
#: Adding an endpoint here is the only registration needed —
#: ``_KNOWN_PATHS`` (the ``path`` label set of the HTTP metrics) is
#: derived from it, so the dispatch and the metric labels can never
#: drift apart.
_ROUTES: dict[tuple[str, str], str] = {
    ("GET", "/"): "_get_index",
    ("GET", "/dashboard"): "_get_dashboard",
    ("GET", "/api/schema"): "_get_schema",
    ("GET", "/api/stats"): "_get_stats",
    ("GET", "/api/metrics"): "_get_metrics",
    ("GET", "/api/traces"): "_get_traces",
    ("GET", "/api/slo"): "_get_slo",
    ("GET", "/api/workload"): "_get_workload",
    ("GET", "/api/quality"): "_get_quality",
    ("POST", "/api/ask"): "_post_ask",
}

#: Paths that become the ``path`` label on HTTP metrics.  Everything else
#: is folded into ``other`` so typo-scanning traffic cannot blow up the
#: label cardinality.
_KNOWN_PATHS = tuple(sorted({path for _, path in _ROUTES}))


class _DemoHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer with a listen backlog sized for bursts.

    The stdlib default backlog of 5 resets connections at the TCP layer
    under a concurrent burst, before the admission controller ever sees
    them.  Overload policy belongs to :class:`AdmissionController` (a
    typed 429 + ``Retry-After``), so the accept queue is sized to pass
    bursts through to it.
    """

    request_queue_size = 128


class MuveDemoServer:
    """Serves one :class:`Muve` instance to a browser.

    ``access_log=True`` enables structured access logging (one JSON line
    per request to ``access_log_stream``, default stderr); it is off by
    default so tests and the REPL stay quiet.
    """

    def __init__(self, muve: Muve, host: str = "127.0.0.1",
                 port: int = 0,
                 response_cache_size: int = 128,
                 access_log: bool = False,
                 access_log_stream=None,
                 max_inflight: int = 32,
                 retry_after_seconds: float = 1.0) -> None:
        self.muve = muve
        self.metrics = muve.metrics
        self.access_log = StructuredLogger(stream=access_log_stream,
                                           enabled=access_log)
        self._responses = LruCache(response_cache_size)
        #: Load shedding for ``POST /api/ask``: at most ``max_inflight``
        #: pipeline runs at once; excess requests are rejected
        #: immediately with 429 + ``Retry-After`` rather than queued
        #: (queuing under overload only grows the latency of every
        #: request behind the queue).
        self.admission = AdmissionController(
            max_inflight, retry_after_seconds=retry_after_seconds,
            metrics=self.metrics)
        handler = _make_handler(self)
        self._http = _DemoHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        return self._http.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}/"

    def start(self) -> None:
        """Serve on a daemon thread; returns immediately."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._http.serve_forever,
                                        daemon=True)
        self._thread.start()

    def serve_forever(self) -> None:  # pragma: no cover - interactive
        self._http.serve_forever()

    def shutdown(self) -> None:
        self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # ------------------------------------------------------------------

    def handle_ask(self, payload: dict,
                   want_trace: bool = False,
                   deadline_ms: float | None = None) -> dict:
        question = str(payload.get("question", "")).strip()
        if not question:
            raise ReproError("empty question")
        voice = bool(payload.get("voice", False))
        trend = bool(payload.get("trend", False))
        if deadline_ms is None:
            deadline_ms = _parse_deadline_ms(payload.get("deadline_ms"))
        if want_trace or payload.get("trace"):
            with deadline_scope(deadline_ms):
                return self._answer_traced(question, voice, trend)
        if deadline_ms is not None or active_fault_plan() is not None:
            # A deadline (or an injected fault) can degrade the answer;
            # degraded answers must never be cached, or a later
            # pressure-free ask of the same question would be served the
            # shrunk multiplot from memory.
            with deadline_scope(deadline_ms):
                return self._answer(question, voice, trend)
        return self._responses.get_or_compute(
            (question, voice, trend),
            lambda: self._answer(question, voice, trend))

    def _answer_traced(self, question: str, voice: bool,
                       trend: bool) -> dict:
        """Answer under a root ``request`` span and attach its tree.

        Bypasses the response cache: a cached answer would produce an
        empty trace, and the whole point of ``?trace=1`` is to see where
        the time of a real pipeline run goes.
        """
        with trace_span("request", path="/api/ask") as root:
            root.set_attribute("question", question)
            result = dict(self._answer(question, voice, trend))
        # Identify our trace in the ring buffer by root-span identity; a
        # concurrent traced request may have appended after ours, so scan
        # a small tail window rather than only the newest entry.
        for trace in reversed(get_trace_log().tail(16)):
            if trace.root is root:
                result["trace"] = trace.to_dict()
                break
        return result

    def _answer(self, question: str, voice: bool, trend: bool) -> dict:
        if trend:
            response = self.muve.ask_trend(question)
            return {
                "transcript": response.transcript,
                "seed_sql": (f"{response.seed_query.to_sql()} "
                             f"BY {response.x_column}"),
                "planner": "series planner (cardinality greedy)",
                "candidates": [
                    {"sql": c.query.to_sql(),
                     "probability": c.probability}
                    for c in response.candidates],
                "svg": self._render_svg(response),
                "text": self._render_text(response),
                "degraded": response.degraded,
                "degradations": [event.to_dict()
                                 for event in response.degradations],
                "quality": (response.quality.to_dict()
                            if response.quality else None),
            }
        if voice:
            response = self.muve.ask_voice(question)
        else:
            response = self.muve.ask(question)
        planning = response.planning
        return {
            "transcript": response.transcript,
            "seed_sql": response.seed_query.to_sql(),
            "planner": (f"{planning.solver_name}, expected "
                        f"{planning.expected_cost:.0f} ms, planned in "
                        f"{planning.elapsed_seconds * 1000:.0f} ms"),
            "candidates": [
                {"sql": c.query.to_sql(), "probability": c.probability}
                for c in response.candidates],
            "svg": self._render_svg(response),
            "text": self._render_text(response),
            "degraded": response.degraded,
            "degradations": [event.to_dict()
                             for event in response.degradations],
            "quality": (response.quality.to_dict()
                        if response.quality else None),
        }

    def _render_svg(self, response) -> str:
        with trace_span("render.svg") as span:
            svg = response.to_svg()
            span.set_attribute("bytes", len(svg))
            return svg

    def _render_text(self, response) -> str:
        with trace_span("render.text") as span:
            text = response.to_text()
            span.set_attribute("bytes", len(text))
            return text

    def handle_schema(self) -> dict:
        table = self.muve.database.table(self.muve.table_name)
        return {
            "table": self.muve.table_name,
            "rows": table.num_rows,
            "columns": [
                {"name": column.name, "type": column.dtype.value}
                for column in table.schema.columns],
        }

    def handle_slo(self) -> dict:
        return self.muve.slo.report()

    def handle_workload(self, limit: int = 20) -> dict:
        return get_workload_analytics().report(limit)

    def handle_quality(self) -> dict:
        return quality_summary(self.metrics)

    def handle_dashboard(self) -> str:
        """The server-rendered observability page (``GET /dashboard``)."""
        return render_dashboard(
            slo=self.handle_slo(),
            quality=self.handle_quality(),
            workload=self.handle_workload(),
            stats=self.handle_stats(),
        )

    def handle_stats(self) -> dict:
        snapshot = self._responses.stats
        stats = {
            "responses": {
                "hits": snapshot.hits, "misses": snapshot.misses,
                "evictions": snapshot.evictions, "size": snapshot.size,
                "hit_rate": snapshot.hit_rate},
        }
        stats.update(self.muve.cache_stats())
        from repro.execution.batch import batch_stats
        from repro.execution.parallel import pool_stats
        from repro.phonetics.index import phonetic_stats
        from repro.sqldb.index import index_stats
        stats["batch_executor"] = batch_stats()
        stats["parallel"] = pool_stats()
        stats["phonetics"] = phonetic_stats()
        stats["indexes"] = index_stats()
        return stats


def _parse_deadline_ms(raw) -> float | None:
    """Validate a deadline from a query param or JSON body field."""
    if raw is None or raw == "":
        return None
    try:
        value = float(raw)
    except (TypeError, ValueError):
        raise ReproError(
            f"deadline_ms must be a number, got {raw!r}") from None
    if value <= 0:
        raise ReproError(
            f"deadline_ms must be positive, got {value}")
    return value


def _make_handler(server: MuveDemoServer):
    class Handler(BaseHTTPRequestHandler):
        _status: int = 0

        def log_message(self, *args) -> None:
            # The default hostname-resolving stderr log is replaced by
            # the structured access log written in _handle().
            pass

        def _send(self, status: int, body: bytes,
                  content_type: str,
                  headers: dict[str, str] | None = None) -> None:
            self._status = status
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _send_json(self, status: int, payload: dict,
                       headers: dict[str, str] | None = None) -> None:
            self._send(status, json.dumps(payload).encode("utf-8"),
                       "application/json; charset=utf-8",
                       headers=headers)

        def _send_text(self, status: int, text: str) -> None:
            self._send(status, text.encode("utf-8"),
                       "text/plain; charset=utf-8")

        # --------------------------------------------------------------

        def _handle(self, method: str) -> None:
            """Run one request with timing, metrics and error mapping.

            Dispatch is table-driven: the ``_ROUTES`` entry for
            ``(method, path)`` names the handler method; no entry means
            404.  Every error response carries a machine-readable
            ``error_type`` (the exception class name) next to the
            human-readable ``error`` message, and increments the typed
            ``errors`` counter.  :class:`OverloadedError` (load
            shedding) maps to 429 with a ``Retry-After`` header; other
            domain errors (:class:`ReproError`) map to 400; anything
            else maps to a 500 JSON error (never a stack trace down a
            closed socket).
            """
            path = urlsplit(self.path).path
            if path == "/index.html":
                path = "/"
            label = path if path in _KNOWN_PATHS else "other"
            started = time.perf_counter()
            try:
                handler_name = _ROUTES.get((method, path))
                if handler_name is None:
                    self._send_json(404, {"error": "not found",
                                          "error_type": "NotFound"})
                else:
                    getattr(self, handler_name)()
            except OverloadedError as exc:
                server.metrics.counter(
                    "errors", where="http",
                    type=type(exc).__name__).inc()
                self._send_json(
                    429,
                    {"error": str(exc),
                     "error_type": type(exc).__name__,
                     "retry_after_seconds": exc.retry_after_seconds},
                    headers={"Retry-After":
                             f"{exc.retry_after_seconds:.0f}"})
            except ReproError as exc:
                server.metrics.counter(
                    "errors", where="http",
                    type=type(exc).__name__).inc()
                self._send_json(400, {"error": str(exc),
                                      "error_type": type(exc).__name__})
            except BrokenPipeError:  # pragma: no cover - client gone
                self._status = self._status or 499
            except Exception as exc:
                server.metrics.counter(
                    "errors", where="http",
                    type=type(exc).__name__).inc()
                self._send_json(500, {
                    "error": f"internal error: {type(exc).__name__}: "
                             f"{exc}",
                    "error_type": type(exc).__name__})
            duration_ms = (time.perf_counter() - started) * 1000.0
            server.metrics.histogram(
                "http_request_ms", method=method, path=label,
            ).observe(duration_ms)
            server.metrics.counter(
                "http_requests", method=method, path=label,
                status=str(self._status)).inc()
            server.access_log.log(
                "http_request", method=method, path=self.path,
                status=self._status, duration_ms=round(duration_ms, 3))

        def _query(self) -> dict[str, list[str]]:
            return parse_qs(urlsplit(self.path).query)

        def _limit(self, default: int = 20) -> int:
            """The ``?n=`` result-count parameter, validated."""
            try:
                return int(self._query().get("n", [str(default)])[-1])
            except ValueError:
                raise ReproError("?n= must be an integer") from None

        def _send_html(self, status: int, html: str) -> None:
            self._send(status, html.encode("utf-8"),
                       "text/html; charset=utf-8")

        def _get_index(self) -> None:
            self._send_html(200, PAGE)

        def _get_dashboard(self) -> None:
            self._send_html(200, server.handle_dashboard())

        def _get_schema(self) -> None:
            self._send_json(200, server.handle_schema())

        def _get_stats(self) -> None:
            self._send_json(200, server.handle_stats())

        def _get_slo(self) -> None:
            self._send_json(200, server.handle_slo())

        def _get_workload(self) -> None:
            self._send_json(200, server.handle_workload(self._limit()))

        def _get_quality(self) -> None:
            self._send_json(200, server.handle_quality())

        def _get_metrics(self) -> None:
            query = self._query()
            if query.get("format", [""])[-1] == "prometheus":
                self._send_text(
                    200, server.metrics.render_prometheus())
            else:
                self._send_json(200, server.metrics.snapshot())

        def _get_traces(self) -> None:
            query = self._query()
            limit = self._limit()
            log = get_trace_log()
            if query.get("format", [""])[-1] == "jsonl":
                self._send_text(200, log.to_jsonl(limit))
            else:
                self._send_json(200, {
                    "traces": [trace.to_dict()
                               for trace in log.tail(limit)]})

        def _post_ask(self) -> None:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length) if length else b"{}"
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                self._send_json(400, {"error": "invalid JSON body",
                                      "error_type": "ReproError"})
                return
            query = self._query()
            want_trace = query.get(
                "trace", ["0"])[-1] not in ("", "0", "false")
            deadline_ms = _parse_deadline_ms(
                query.get("deadline_ms", [""])[-1])
            with server.admission.admit():
                result = server.handle_ask(payload,
                                           want_trace=want_trace,
                                           deadline_ms=deadline_ms)
            self._send_json(200, result)

        def do_GET(self) -> None:
            self._handle("GET")

        def do_POST(self) -> None:
            self._handle("POST")

    return Handler
