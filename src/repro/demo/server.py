"""The demo HTTP server (standard library only).

Endpoints:

* ``GET /`` — the single-page UI.
* ``GET /api/schema`` — table name and columns (for autocomplete/help).
* ``GET /api/stats`` — cache hit/miss counters of the serving path.
* ``POST /api/ask`` — body ``{"question": str, "voice": bool,
  "trend": bool}``; returns transcript, seed SQL, planner info, the
  candidate distribution, the rendered SVG and the terminal rendering.

The server runs on a background thread (``ThreadingHTTPServer``) and
handles requests **concurrently**: the MUVE pipeline is thread-safe
(randomness is derived per call, lazy caches are locked, planner and
executor hold no per-request state), so no server-wide lock is needed.
Answers are additionally memoised in a response cache keyed on
``(question, voice, trend)`` — the pipeline is deterministic per question,
so a repeated question is served straight from memory, and a stampede of
identical questions computes once (single-flight).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.caching import LruCache
from repro.demo.page import PAGE
from repro.errors import ReproError
from repro.muve import Muve


class MuveDemoServer:
    """Serves one :class:`Muve` instance to a browser."""

    def __init__(self, muve: Muve, host: str = "127.0.0.1",
                 port: int = 0,
                 response_cache_size: int = 128) -> None:
        self.muve = muve
        self._responses = LruCache(response_cache_size)
        handler = _make_handler(self)
        self._http = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        return self._http.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}/"

    def start(self) -> None:
        """Serve on a daemon thread; returns immediately."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._http.serve_forever,
                                        daemon=True)
        self._thread.start()

    def serve_forever(self) -> None:  # pragma: no cover - interactive
        self._http.serve_forever()

    def shutdown(self) -> None:
        self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # ------------------------------------------------------------------

    def handle_ask(self, payload: dict) -> dict:
        question = str(payload.get("question", "")).strip()
        if not question:
            raise ReproError("empty question")
        voice = bool(payload.get("voice", False))
        trend = bool(payload.get("trend", False))
        return self._responses.get_or_compute(
            (question, voice, trend),
            lambda: self._answer(question, voice, trend))

    def _answer(self, question: str, voice: bool, trend: bool) -> dict:
        if trend:
            response = self.muve.ask_trend(question)
            return {
                "transcript": response.transcript,
                "seed_sql": (f"{response.seed_query.to_sql()} "
                             f"BY {response.x_column}"),
                "planner": "series planner (cardinality greedy)",
                "candidates": [
                    {"sql": c.query.to_sql(),
                     "probability": c.probability}
                    for c in response.candidates],
                "svg": response.to_svg(),
                "text": response.to_text(),
            }
        if voice:
            response = self.muve.ask_voice(question)
        else:
            response = self.muve.ask(question)
        planning = response.planning
        return {
            "transcript": response.transcript,
            "seed_sql": response.seed_query.to_sql(),
            "planner": (f"{planning.solver_name}, expected "
                        f"{planning.expected_cost:.0f} ms, planned in "
                        f"{planning.elapsed_seconds * 1000:.0f} ms"),
            "candidates": [
                {"sql": c.query.to_sql(), "probability": c.probability}
                for c in response.candidates],
            "svg": response.to_svg(),
            "text": response.to_text(),
        }

    def handle_schema(self) -> dict:
        table = self.muve.database.table(self.muve.table_name)
        return {
            "table": self.muve.table_name,
            "rows": table.num_rows,
            "columns": [
                {"name": column.name, "type": column.dtype.value}
                for column in table.schema.columns],
        }

    def handle_stats(self) -> dict:
        snapshot = self._responses.stats
        stats = {
            "responses": {
                "hits": snapshot.hits, "misses": snapshot.misses,
                "evictions": snapshot.evictions, "size": snapshot.size,
                "hit_rate": snapshot.hit_rate},
        }
        stats.update(self.muve.cache_stats())
        return stats


def _make_handler(server: MuveDemoServer):
    class Handler(BaseHTTPRequestHandler):
        def log_message(self, *args) -> None:  # silence request logging
            pass

        def _send(self, status: int, body: bytes,
                  content_type: str) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_json(self, status: int, payload: dict) -> None:
            self._send(status, json.dumps(payload).encode("utf-8"),
                       "application/json; charset=utf-8")

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            if self.path in ("/", "/index.html"):
                self._send(200, PAGE.encode("utf-8"),
                           "text/html; charset=utf-8")
            elif self.path == "/api/schema":
                self._send_json(200, server.handle_schema())
            elif self.path == "/api/stats":
                self._send_json(200, server.handle_stats())
            else:
                self._send_json(404, {"error": "not found"})

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            if self.path != "/api/ask":
                self._send_json(404, {"error": "not found"})
                return
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length) if length else b"{}"
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                self._send_json(400, {"error": "invalid JSON body"})
                return
            try:
                self._send_json(200, server.handle_ask(payload))
            except ReproError as exc:
                self._send_json(400, {"error": str(exc)})

    return Handler
