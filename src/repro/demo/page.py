"""The demo's single HTML page (inline CSS/JS, no external assets)."""

PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>MUVE — robust voice querying</title>
<style>
  body { font-family: sans-serif; margin: 2rem auto; max-width: 1200px;
         color: #222; }
  h1 { font-size: 1.4rem; }
  .ask { display: flex; gap: 0.5rem; margin-bottom: 0.75rem; }
  .ask input[type=text] { flex: 1; padding: 0.5rem; font-size: 1rem; }
  .ask button { padding: 0.5rem 1.2rem; font-size: 1rem; cursor: pointer; }
  .options { margin-bottom: 1rem; color: #555; font-size: 0.9rem; }
  .meta { background: #f6f6f6; border: 1px solid #ddd; padding: 0.6rem;
          font-family: monospace; font-size: 0.85rem;
          white-space: pre-wrap; }
  #plot { border: 1px solid #ddd; margin-top: 1rem; overflow-x: auto; }
  #candidates { font-family: monospace; font-size: 0.8rem;
                margin-top: 1rem; }
  #candidates div { padding: 1px 0; }
  .bar { display: inline-block; background: #4878a8; height: 0.7em;
         margin-right: 0.4em; vertical-align: middle; }
  .error { color: #b00; }
</style>
</head>
<body>
<h1>MUVE — multiplots for voice queries</h1>
<div class="ask">
  <input id="question" type="text"
         placeholder="e.g. average resolution hours for borough Brooklyn"
         autofocus>
  <button id="go">Ask</button>
</div>
<div class="options">
  <label><input type="checkbox" id="voice"> simulate speech noise</label>
  &nbsp;&nbsp;
  <label><input type="checkbox" id="trend">
    trend question ("... by &lt;column&gt;")</label>
</div>
<div id="meta" class="meta">Ask something about the loaded table.</div>
<div id="plot"></div>
<div id="candidates"></div>
<script>
async function ask() {
  const question = document.getElementById('question').value;
  const voice = document.getElementById('voice').checked;
  const trend = document.getElementById('trend').checked;
  const meta = document.getElementById('meta');
  meta.textContent = 'thinking…';
  meta.classList.remove('error');
  try {
    const response = await fetch('/api/ask', {
      method: 'POST',
      headers: {'Content-Type': 'application/json'},
      body: JSON.stringify({question, voice, trend}),
    });
    const data = await response.json();
    if (!response.ok) { throw new Error(data.error || 'request failed'); }
    meta.textContent =
      (data.transcript !== question ? 'heard: ' + data.transcript + '\\n'
                                    : '')
      + 'interpreted: ' + data.seed_sql
      + (data.planner ? '\\nplanner: ' + data.planner : '');
    document.getElementById('plot').innerHTML = data.svg;
    const list = document.getElementById('candidates');
    list.innerHTML = '<b>interpretation distribution</b>';
    for (const c of data.candidates) {
      const row = document.createElement('div');
      const bar = document.createElement('span');
      bar.className = 'bar';
      bar.style.width = (c.probability * 220) + 'px';
      row.appendChild(bar);
      row.appendChild(document.createTextNode(
        c.probability.toFixed(3) + '  ' + c.sql));
      list.appendChild(row);
    }
  } catch (err) {
    meta.textContent = String(err);
    meta.classList.add('error');
  }
}
document.getElementById('go').addEventListener('click', ask);
document.getElementById('question').addEventListener('keydown',
  (event) => { if (event.key === 'Enter') ask(); });
</script>
</body>
</html>
"""
