"""The demo's single HTML page (inline CSS/JS, no external assets)."""

PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>MUVE — robust voice querying</title>
<style>
  body { font-family: sans-serif; margin: 2rem auto; max-width: 1200px;
         color: #222; }
  h1 { font-size: 1.4rem; }
  .ask { display: flex; gap: 0.5rem; margin-bottom: 0.75rem; }
  .ask input[type=text] { flex: 1; padding: 0.5rem; font-size: 1rem; }
  .ask button { padding: 0.5rem 1.2rem; font-size: 1rem; cursor: pointer; }
  .options { margin-bottom: 1rem; color: #555; font-size: 0.9rem; }
  .meta { background: #f6f6f6; border: 1px solid #ddd; padding: 0.6rem;
          font-family: monospace; font-size: 0.85rem;
          white-space: pre-wrap; }
  #plot { border: 1px solid #ddd; margin-top: 1rem; overflow-x: auto; }
  #candidates { font-family: monospace; font-size: 0.8rem;
                margin-top: 1rem; }
  #candidates div { padding: 1px 0; }
  .bar { display: inline-block; background: #4878a8; height: 0.7em;
         margin-right: 0.4em; vertical-align: middle; }
  .error { color: #b00; }
</style>
</head>
<body>
<h1>MUVE — multiplots for voice queries</h1>
<div class="ask">
  <input id="question" type="text"
         placeholder="e.g. average resolution hours for borough Brooklyn"
         autofocus>
  <button id="go">Ask</button>
</div>
<div class="options">
  <label><input type="checkbox" id="voice"> simulate speech noise</label>
  &nbsp;&nbsp;
  <label><input type="checkbox" id="trend">
    trend question ("... by &lt;column&gt;")</label>
</div>
<div id="meta" class="meta">Ask something about the loaded table.</div>
<div id="plot"></div>
<div id="candidates"></div>
<script>
async function ask() {
  const question = document.getElementById('question').value;
  const voice = document.getElementById('voice').checked;
  const trend = document.getElementById('trend').checked;
  const meta = document.getElementById('meta');
  meta.textContent = 'thinking…';
  meta.classList.remove('error');
  try {
    const response = await fetch('/api/ask', {
      method: 'POST',
      headers: {'Content-Type': 'application/json'},
      body: JSON.stringify({question, voice, trend}),
    });
    const data = await response.json();
    if (!response.ok) { throw new Error(data.error || 'request failed'); }
    meta.textContent =
      (data.transcript !== question ? 'heard: ' + data.transcript + '\\n'
                                    : '')
      + 'interpreted: ' + data.seed_sql
      + (data.planner ? '\\nplanner: ' + data.planner : '');
    document.getElementById('plot').innerHTML = data.svg;
    const list = document.getElementById('candidates');
    list.innerHTML = '<b>interpretation distribution</b>';
    for (const c of data.candidates) {
      const row = document.createElement('div');
      const bar = document.createElement('span');
      bar.className = 'bar';
      bar.style.width = (c.probability * 220) + 'px';
      row.appendChild(bar);
      row.appendChild(document.createTextNode(
        c.probability.toFixed(3) + '  ' + c.sql));
      list.appendChild(row);
    }
  } catch (err) {
    meta.textContent = String(err);
    meta.classList.add('error');
  }
}
document.getElementById('go').addEventListener('click', ask);
document.getElementById('question').addEventListener('keydown',
  (event) => { if (event.key === 'Enter') ask(); });
</script>
</body>
</html>
"""


# ----------------------------------------------------------------------
# The observability dashboard (GET /dashboard): server-rendered from the
# same payloads the JSON endpoints serve, so it can never disagree with
# them.  Plain HTML, no JS — refresh to update.

import html as _html

_DASHBOARD_STYLE = """
  body { font-family: sans-serif; margin: 2rem auto; max-width: 1100px;
         color: #222; }
  h1 { font-size: 1.3rem; }
  h2 { font-size: 1.05rem; margin-top: 1.6rem; }
  table { border-collapse: collapse; font-size: 0.85rem; }
  th, td { border: 1px solid #ddd; padding: 0.25rem 0.6rem;
           text-align: right; font-family: monospace; }
  th { background: #f6f6f6; }
  td.name, th.name { text-align: left; font-family: sans-serif; }
  .ok { color: #2a7a2a; }
  .slow_burn { color: #b07000; font-weight: bold; }
  .fast_burn { color: #b00; font-weight: bold; }
  .note { color: #777; font-size: 0.8rem; }
"""


def _esc(value: object) -> str:
    return _html.escape(str(value), quote=True)


def _slo_section(slo: dict) -> list[str]:
    objectives = slo.get("objectives", {})
    lines = ["<h2>SLO burn rates</h2>"]
    if not objectives:
        return lines + ["<p class=note>no objectives registered</p>"]
    windows: list[str] = []
    for entry in objectives.values():
        for window in entry["windows"]:
            if window not in windows:
                windows.append(window)
    head = ("<tr><th class=name>objective</th><th>goal</th>"
            "<th>status</th>"
            + "".join(f"<th>burn {_esc(w)}</th>" for w in windows)
            + "</tr>")
    rows = [head]
    for name, entry in objectives.items():
        status = _esc(entry["status"])
        cells = [f"<td class=name>{_esc(name)}</td>",
                 f"<td>{entry['goal']:.2%}</td>",
                 f"<td class={status}>{status}</td>"]
        for window in windows:
            stats = entry["windows"].get(window)
            cells.append(
                f"<td>{stats['burn_rate']:.2f}</td>" if stats else
                "<td>-</td>")
        rows.append("<tr>" + "".join(cells) + "</tr>")
    return lines + ["<table>"] + rows + ["</table>"]


def _quality_section(quality: dict) -> list[str]:
    lines = ["<h2>Answer quality</h2>"]
    if not quality.get("requests"):
        return lines + ["<p class=note>no requests assessed yet</p>"]
    lines.append(
        f"<p>{quality['requests']:.0f} requests, "
        f"{quality['degraded_rate']:.1%} degraded</p>")
    rows = ["<tr><th class=name>metric</th><th>n</th><th>mean</th>"
            "<th>p50</th><th>p95</th></tr>"]
    for key, stats in sorted(quality.get("histograms", {}).items()):
        rows.append(
            f"<tr><td class=name>{_esc(key)}</td>"
            f"<td>{stats['count']}</td><td>{stats['mean']:.3f}</td>"
            f"<td>{stats['p50']:.3f}</td><td>{stats['p95']:.3f}</td>"
            "</tr>")
    lines += ["<table>"] + rows + ["</table>"]
    outcomes = quality.get("intended_outcomes", {})
    if outcomes:
        shares = ", ".join(f"{_esc(k)}={v:.0f}"
                           for k, v in sorted(outcomes.items()))
        lines.append(f"<p class=note>intended outcomes: {shares}</p>")
    return lines


def _topk_table(title: str, stream: dict) -> list[str]:
    lines = [f"<h2>{_esc(title)}</h2>"]
    top = stream.get("top", [])
    if not top:
        return lines + ["<p class=note>nothing observed yet</p>"]
    rows = ["<tr><th class=name>key</th><th>count</th>"
            "<th>&plusmn;err</th></tr>"]
    for entry in top:
        rows.append(f"<tr><td class=name>{_esc(entry['key'])}</td>"
                    f"<td>{entry['count']}</td>"
                    f"<td>{entry['error']}</td></tr>")
    lines += ["<table>"] + rows + ["</table>",
              f"<p class=note>{stream.get('total_observed', 0)} "
              "observed in window</p>"]
    return lines


def _stats_section(stats: dict) -> list[str]:
    lines = ["<h2>Caches</h2>",
             "<table>",
             "<tr><th class=name>cache</th><th>hits</th><th>misses</th>"
             "<th>hit rate</th><th>size</th></tr>"]
    for name, snap in sorted(stats.items()):
        if not isinstance(snap, dict) or "hit_rate" not in snap:
            continue
        lines.append(
            f"<tr><td class=name>{_esc(name)}</td>"
            f"<td>{snap['hits']:.0f}</td><td>{snap['misses']:.0f}</td>"
            f"<td>{snap['hit_rate']:.2%}</td><td>{snap['size']:.0f}</td>"
            "</tr>")
    return lines + ["</table>"]


def render_dashboard(slo: dict, quality: dict, workload: dict,
                     stats: dict) -> str:
    """The ``GET /dashboard`` page from the JSON endpoint payloads."""
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        "<title>MUVE observability</title>",
        f"<style>{_DASHBOARD_STYLE}</style></head><body>",
        "<h1>MUVE observability</h1>",
        '<p class=note>server-rendered from <a href="/api/slo">/api/slo'
        '</a>, <a href="/api/quality">/api/quality</a>, '
        '<a href="/api/workload">/api/workload</a>, '
        '<a href="/api/stats">/api/stats</a> &mdash; refresh to '
        "update</p>",
    ]
    parts += _slo_section(slo)
    parts += _quality_section(quality)
    parts += _topk_table("Top query templates",
                         workload.get("templates", {}))
    parts += _topk_table("Top vocabulary probes",
                         workload.get("probes", {}))
    parts += _stats_section(stats)
    parts.append("</body></html>")
    return "\n".join(parts)
