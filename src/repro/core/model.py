"""Plots, multiplots and screen geometry (Definitions 2 and 3).

A :class:`Plot` visualizes results of queries sharing one
:class:`~repro.nlq.templates.QueryTemplate`; each query is one :class:`Bar`
whose x-axis label is the placeholder substitution, optionally highlighted
in the markup color (red).  A :class:`Multiplot` arranges plots into rows.
:class:`ScreenGeometry` expresses the paper's width model: every bar has
unit width and plot *i* has base width ``W_i`` (driven by its title), with
each row's total width bounded by the screen width ``W``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from repro.errors import PlanningError
from repro.nlq.templates import QueryTemplate
from repro.sqldb.query import AggregateQuery


@dataclass(frozen=True)
class Bar:
    """One query result inside a plot."""

    query: AggregateQuery
    probability: float
    label: str
    highlighted: bool = False
    value: float | None = None

    def with_value(self, value: float | None) -> "Bar":
        return replace(self, value=value)


@dataclass(frozen=True)
class Plot:
    """A query-group plot: a template (title) plus bars (Definition 2)."""

    template: QueryTemplate
    bars: tuple[Bar, ...]

    def __post_init__(self) -> None:
        seen: set[AggregateQuery] = set()
        for bar in self.bars:
            if bar.query in seen:
                raise PlanningError(
                    f"plot shows query twice: {bar.query.to_sql()!r}")
            seen.add(bar.query)

    @property
    def title(self) -> str:
        return self.template.title()

    @property
    def num_bars(self) -> int:
        return len(self.bars)

    @property
    def num_highlighted(self) -> int:
        return sum(1 for bar in self.bars if bar.highlighted)

    @property
    def has_highlight(self) -> bool:
        return any(bar.highlighted for bar in self.bars)

    def queries(self) -> Iterator[AggregateQuery]:
        for bar in self.bars:
            yield bar.query

    def bar_for(self, query: AggregateQuery) -> Bar | None:
        for bar in self.bars:
            if bar.query == query:
                return bar
        return None

    def probability_mass(self) -> float:
        return sum(bar.probability for bar in self.bars)


@dataclass(frozen=True)
class Multiplot:
    """Plots structured into rows (Definition 3)."""

    rows: tuple[tuple[Plot, ...], ...]

    @classmethod
    def empty(cls, num_rows: int = 1) -> "Multiplot":
        return cls(tuple(() for _ in range(max(1, num_rows))))

    def plots(self) -> Iterator[Plot]:
        for row in self.rows:
            yield from row

    @property
    def num_plots(self) -> int:
        return sum(len(row) for row in self.rows)

    @property
    def num_bars(self) -> int:
        return sum(plot.num_bars for plot in self.plots())

    @property
    def num_highlighted_bars(self) -> int:
        return sum(plot.num_highlighted for plot in self.plots())

    @property
    def num_plots_with_highlight(self) -> int:
        return sum(1 for plot in self.plots() if plot.has_highlight)

    def bar_for(self, query: AggregateQuery) -> Bar | None:
        """The first bar showing *query*, or None."""
        for plot in self.plots():
            bar = plot.bar_for(query)
            if bar is not None:
                return bar
        return None

    def shows(self, query: AggregateQuery) -> bool:
        return self.bar_for(query) is not None

    def highlights(self, query: AggregateQuery) -> bool:
        bar = self.bar_for(query)
        return bar is not None and bar.highlighted

    def displayed_queries(self) -> set[AggregateQuery]:
        return {bar.query for plot in self.plots() for bar in plot.bars}

    def duplicate_queries(self) -> set[AggregateQuery]:
        """Queries shown in more than one plot (targets of the polish
        step)."""
        seen: set[AggregateQuery] = set()
        duplicates: set[AggregateQuery] = set()
        for plot in self.plots():
            for bar in plot.bars:
                if bar.query in seen:
                    duplicates.add(bar.query)
                seen.add(bar.query)
        return duplicates


@dataclass(frozen=True)
class ScreenGeometry:
    """The paper's dimension constraints, in pixel terms.

    Following Section 5.2, widths are normalised so a bar has width one:
    ``width_units`` is the per-row budget ``W``; ``plot_base_units`` is a
    plot's ``W_i`` (title text plus padding, independent of bar count).
    Plot heights are equal and the row count is fixed, so no vertical
    constraint is needed.
    """

    width_pixels: int = 1125          # iPhone-class default, as in Sec. 9.2
    num_rows: int = 1
    bar_width_pixels: int = 60
    char_width_pixels: int = 7
    plot_padding_pixels: int = 30
    row_height_pixels: int = 260

    def __post_init__(self) -> None:
        if self.width_pixels <= 0 or self.num_rows <= 0:
            raise PlanningError("screen dimensions must be positive")
        if self.bar_width_pixels <= 0:
            raise PlanningError("bar width must be positive")

    @property
    def width_units(self) -> float:
        """Row width budget W, in bar-width units."""
        return self.width_pixels / self.bar_width_pixels

    def plot_base_units(self, template: QueryTemplate) -> float:
        """W_i: the plot's width before any bars, in bar-width units."""
        title_pixels = len(template.title()) * self.char_width_pixels
        base_pixels = max(title_pixels, self.bar_width_pixels)
        return (base_pixels + self.plot_padding_pixels) / self.bar_width_pixels

    def plot_units(self, plot: Plot) -> float:
        """Total width of *plot* (base plus one unit per bar)."""
        return self.plot_base_units(plot.template) + plot.num_bars

    def max_bars(self, template: QueryTemplate) -> int:
        """How many bars a single plot of this template could ever hold."""
        return max(0, int(self.width_units
                          - self.plot_base_units(template)))

    def row_units_used(self, row: tuple[Plot, ...]) -> float:
        return sum(self.plot_units(plot) for plot in row)

    def fits(self, multiplot: Multiplot) -> bool:
        """True when the multiplot satisfies all dimension constraints."""
        if len(multiplot.rows) > self.num_rows:
            return False
        epsilon = 1e-9
        return all(self.row_units_used(row) <= self.width_units + epsilon
                   for row in multiplot.rows)
