"""The Section 4 user disambiguation time model.

The model distinguishes three cases for the correct query: highlighted in
red, visualized but not highlighted, or missing.  With ``b``/``b_R`` total
and red bars, ``p``/``p_R`` plots and plots containing a red bar, and
per-bar/per-plot reading costs ``c_B``/``c_P``::

    D_R = b_R * c_B / 2 + p_R * c_P / 2
    D_V = 2 * D_R + (b - b_R) * c_B / 2 + (p - p_R) * c_P / 2
    D_M = (large constant: the user must re-ask the query)

    E[cost] = r_R * D_R + r_V * D_V + r_M * D_M

where ``r_R``/``r_V``/``r_M`` are the probabilities that the correct
query's bar is red, merely shown, or absent.  The default constants are
inferred from the (simulated) user study of Section 4.1 — see
:mod:`repro.users.study` for the calibration procedure.  Units are
milliseconds of estimated user time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.model import Multiplot
from repro.errors import PlanningError
from repro.nlq.candidates import CandidateQuery

#: Default model constants (milliseconds). ``DEFAULT_MISS_COST`` reflects the
#: overhead of re-asking a voice query and waiting for new results.
DEFAULT_BAR_COST_MS = 400.0
DEFAULT_PLOT_COST_MS = 1800.0
DEFAULT_MISS_COST_MS = 30_000.0


@dataclass(frozen=True)
class CostBreakdown:
    """All intermediate quantities of one cost evaluation (for tests and
    EXPLAIN-style debugging of planner decisions)."""

    r_red: float
    r_visible: float
    r_missing: float
    d_red: float
    d_visible: float
    d_missing: float

    @property
    def expected_cost(self) -> float:
        return (self.r_red * self.d_red
                + self.r_visible * self.d_visible
                + self.r_missing * self.d_missing)


@dataclass(frozen=True)
class UserCostModel:
    """Parameterised disambiguation-time model (Section 4.2)."""

    bar_cost: float = DEFAULT_BAR_COST_MS
    plot_cost: float = DEFAULT_PLOT_COST_MS
    miss_cost: float = DEFAULT_MISS_COST_MS

    def __post_init__(self) -> None:
        if self.bar_cost < 0 or self.plot_cost < 0:
            raise PlanningError("reading costs must be non-negative")
        if self.miss_cost <= 0:
            raise PlanningError("miss cost must be positive")
        # Assumption 1 of the paper (miss dominates reading) is checked per
        # multiplot in `breakdown`, since D_R/D_V depend on the multiplot.

    # ------------------------------------------------------------------
    # The three case costs
    # ------------------------------------------------------------------

    def d_red(self, num_red_bars: int, num_red_plots: int) -> float:
        """Expected time when the correct result is highlighted."""
        return (num_red_bars * self.bar_cost / 2.0
                + num_red_plots * self.plot_cost / 2.0)

    def d_visible(self, num_bars: int, num_red_bars: int,
                  num_plots: int, num_red_plots: int) -> float:
        """Expected time when the correct result is shown, not highlighted:
        all red bars are read first, then half of the remainder."""
        return (2.0 * self.d_red(num_red_bars, num_red_plots)
                + (num_bars - num_red_bars) * self.bar_cost / 2.0
                + (num_plots - num_red_plots) * self.plot_cost / 2.0)

    # ------------------------------------------------------------------
    # Expected cost of a multiplot
    # ------------------------------------------------------------------

    def breakdown(self, multiplot: Multiplot,
                  candidates: Iterable[CandidateQuery]) -> CostBreakdown:
        """Probabilities and case costs for *multiplot* over *candidates*.

        Candidate probabilities need not sum to one: any residual mass is
        treated as "the correct query is none of the candidates", i.e. a
        guaranteed miss, which penalises empty multiplots correctly.
        """
        r_red = 0.0
        r_visible = 0.0
        total = 0.0
        for candidate in candidates:
            total += candidate.probability
            bar = multiplot.bar_for(candidate.query)
            if bar is None:
                continue
            if bar.highlighted:
                r_red += candidate.probability
            else:
                r_visible += candidate.probability
        r_missing = max(0.0, total - r_red - r_visible) + max(0.0,
                                                              1.0 - total)
        b = multiplot.num_bars
        b_r = multiplot.num_highlighted_bars
        p = multiplot.num_plots
        p_r = multiplot.num_plots_with_highlight
        return CostBreakdown(
            r_red=r_red,
            r_visible=r_visible,
            r_missing=r_missing,
            d_red=self.d_red(b_r, p_r),
            d_visible=self.d_visible(b, b_r, p, p_r),
            d_missing=self.miss_cost,
        )

    def expected_cost(self, multiplot: Multiplot,
                      candidates: Iterable[CandidateQuery]) -> float:
        """E[disambiguation time] in milliseconds (the planning objective)."""
        return self.breakdown(multiplot, candidates).expected_cost

    def cost_savings(self, multiplot: Multiplot,
                     candidates: Iterable[CandidateQuery]) -> float:
        """Definition 6: cost of the empty multiplot minus this one's.

        The empty multiplot misses every candidate, so its cost is exactly
        ``miss_cost``; savings are what the submodular greedy maximises.
        """
        candidates = list(candidates)
        return self.miss_cost - self.expected_cost(multiplot, candidates)
