"""Multiplot selection problem instances (Definition 5)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cost_model import UserCostModel
from repro.core.model import Multiplot, ScreenGeometry
from repro.errors import PlanningError
from repro.nlq.candidates import CandidateQuery
from repro.nlq.templates import QueryTemplate, templates_of


@dataclass(frozen=True)
class MultiplotSelectionProblem:
    """Everything a solver needs: candidates, geometry, cost model.

    Optionally, per-candidate processing costs and a processing budget can
    be attached to activate the processing-cost-aware extension of
    Section 8.1 (used by the ILP solver and the Figure 8 experiment).
    Processing costs are keyed by candidate index.
    """

    candidates: tuple[CandidateQuery, ...]
    geometry: ScreenGeometry = field(default_factory=ScreenGeometry)
    cost_model: UserCostModel = field(default_factory=UserCostModel)
    processing_costs: tuple[float, ...] | None = None
    processing_budget: float | None = None

    def __post_init__(self) -> None:
        if not self.candidates:
            raise PlanningError("problem needs at least one candidate query")
        total = sum(c.probability for c in self.candidates)
        if total > 1.0 + 1e-6:
            raise PlanningError(
                f"candidate probabilities sum to {total:.4f} > 1")
        queries = {c.query for c in self.candidates}
        if len(queries) != len(self.candidates):
            raise PlanningError("duplicate candidate queries in problem")
        if self.processing_costs is not None:
            if len(self.processing_costs) != len(self.candidates):
                raise PlanningError(
                    "processing_costs must align with candidates")
            if any(cost < 0 for cost in self.processing_costs):
                raise PlanningError("processing costs must be non-negative")
        if self.processing_budget is not None:
            if self.processing_costs is None:
                raise PlanningError(
                    "processing_budget requires processing_costs")
            if self.processing_budget < 0:
                raise PlanningError("processing budget must be non-negative")

    # ------------------------------------------------------------------

    def templates(self) -> list[QueryTemplate]:
        """All templates instantiated by at least one candidate, in a
        deterministic order (these are the candidate plots' shapes)."""
        ordered: list[QueryTemplate] = []
        seen: set[QueryTemplate] = set()
        for candidate in self.candidates:
            for template in templates_of(candidate.query):
                if template not in seen:
                    seen.add(template)
                    ordered.append(template)
        return ordered

    def queries_by_template(self) -> dict[QueryTemplate,
                                          list[CandidateQuery]]:
        """Template -> candidates instantiating it, most probable first.

        This is the grouping step of Algorithm 2.
        """
        groups: dict[QueryTemplate, list[CandidateQuery]] = {}
        for candidate in self.candidates:
            for template in templates_of(candidate.query):
                groups.setdefault(template, []).append(candidate)
        for members in groups.values():
            members.sort(key=lambda c: (-c.probability, c.query.to_sql()))
        return groups

    def evaluate(self, multiplot: Multiplot) -> float:
        """Expected disambiguation cost of *multiplot* for this instance."""
        return self.cost_model.expected_cost(multiplot, self.candidates)

    def is_feasible(self, multiplot: Multiplot) -> bool:
        """Dimension constraints plus no-duplicate-results check."""
        if not self.geometry.fits(multiplot):
            return False
        if multiplot.duplicate_queries():
            return False
        known = {c.query for c in self.candidates}
        return all(bar.query in known
                   for plot in multiplot.plots() for bar in plot.bars)

    def probability_of(self, query) -> float:
        for candidate in self.candidates:
            if candidate.query == query:
                return candidate.probability
        return 0.0
