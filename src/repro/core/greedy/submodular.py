"""Greedy maximization of monotone submodular functions.

Two selection routines back Algorithm 4:

* :func:`maximize_cardinality` — the classical Nemhauser/Wolsey greedy for
  a cardinality constraint (the paper's fixed-plot-width variant), with the
  (1 - 1/e) guarantee.
* :func:`maximize_knapsack` — greedy for multi-dimensional knapsack
  constraints in the spirit of Yu, Xu and Cui (GlobalSIP 2016): marginal
  gain *per unit weight* drives selection, candidate thresholds are swept
  geometrically with parameter ``epsilon``, and the best single item is
  kept as a fallback (necessary for any constant-factor guarantee under
  knapsack constraints).

Both are generic over an item type: the caller provides the gain oracle
(evaluated on *sets* of items, so marginal gains are exact) and weights.
"""

from __future__ import annotations

import math
from typing import Callable, Hashable, Sequence, TypeVar

Item = TypeVar("Item", bound=Hashable)

GainFunction = Callable[[tuple], float]
"""Maps a tuple of selected items to the objective value (cost savings)."""


def maximize_cardinality(items: Sequence[Item], gain: GainFunction,
                         limit: int) -> list[Item]:
    """Nemhauser greedy: repeatedly add the item with the largest positive
    marginal gain until *limit* items are selected or no item helps."""
    if limit <= 0:
        return []
    selected: list[Item] = []
    remaining = list(items)
    current_value = gain(())
    while remaining and len(selected) < limit:
        best_index = -1
        best_delta = 0.0
        for index, item in enumerate(remaining):
            delta = gain(tuple(selected) + (item,)) - current_value
            if delta > best_delta:
                best_delta = delta
                best_index = index
        if best_index < 0:
            break
        selected.append(remaining.pop(best_index))
        current_value += best_delta
    return selected


def maximize_knapsack(items: Sequence[Item], gain: GainFunction,
                      weights: Callable[[Item], Sequence[float]],
                      budgets: Sequence[float],
                      epsilon: float = 0.1) -> list[Item]:
    """Density-threshold greedy under multi-dimensional knapsack budgets.

    Passes run over geometrically decreasing density thresholds (factor
    ``1 + epsilon`` apart, as in Yu et al.); within a pass any feasible
    item whose marginal-gain density meets the threshold is taken.  The
    result is compared against the best single feasible item and the better
    of the two is returned.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    budgets = list(budgets)
    feasible_items = [item for item in items
                      if _fits(weights(item), [0.0] * len(budgets), budgets)]
    if not feasible_items:
        return []

    base_value = gain(())

    # Establish the threshold range from the best single-item density.
    densities = []
    best_single: Item | None = None
    best_single_gain = -math.inf
    for item in feasible_items:
        item_gain = gain((item,)) - base_value
        if item_gain > best_single_gain:
            best_single_gain = item_gain
            best_single = item
        total_weight = max(sum(weights(item)), 1e-12)
        if item_gain > 0:
            densities.append(item_gain / total_weight)
    if not densities:
        return []
    max_density = max(densities)
    min_density = max(max_density * epsilon / max(len(feasible_items), 1),
                      1e-12)

    selected: list[Item] = []
    used = [0.0] * len(budgets)
    current_value = base_value
    threshold = max_density
    while threshold >= min_density:
        progress = False
        for item in feasible_items:
            if item in selected:
                continue
            item_weights = weights(item)
            if not _fits(item_weights, used, budgets):
                continue
            delta = gain(tuple(selected) + (item,)) - current_value
            if delta <= 0:
                continue
            density = delta / max(sum(item_weights), 1e-12)
            if density >= threshold:
                selected.append(item)
                used = [u + w for u, w in zip(used, item_weights)]
                current_value += delta
                progress = True
        if not progress:
            threshold /= (1.0 + epsilon)

    greedy_gain = current_value - base_value
    if best_single is not None and best_single_gain > greedy_gain:
        return [best_single]
    return selected


def _fits(item_weights: Sequence[float], used: Sequence[float],
          budgets: Sequence[float]) -> bool:
    epsilon = 1e-9
    return all(u + w <= b + epsilon
               for u, w, b in zip(used, item_weights, budgets))
