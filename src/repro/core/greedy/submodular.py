"""Greedy maximization of monotone submodular functions.

Two selection routines back Algorithm 4:

* :func:`maximize_cardinality` — greedy for a cardinality constraint (the
  paper's fixed-plot-width variant), with the (1 - 1/e) guarantee.  It is
  implemented as *lazy greedy* (Minoux's accelerated greedy, the CELF
  variant of Leskovec et al.): stale marginal gains are kept in a
  max-heap as upper bounds and only re-evaluated when an item reaches the
  top.  By submodularity a fresh gain never exceeds its stale bound, so
  the lazy variant selects the **identical sequence** the classical eager
  loop (:func:`maximize_cardinality_eager`) would — while calling the
  gain oracle far less often, which is the planner's dominant cost at
  large candidate counts.
* :func:`maximize_knapsack` — greedy for multi-dimensional knapsack
  constraints in the spirit of Yu, Xu and Cui (GlobalSIP 2016): marginal
  gain *per unit weight* drives selection, candidate thresholds are swept
  geometrically with parameter ``epsilon``, and the best single item is
  kept as a fallback (necessary for any constant-factor guarantee under
  knapsack constraints).

Both are generic over an item type: the caller provides the gain oracle
(evaluated on *sets* of items, so marginal gains are exact) and weights.
Both route oracle evaluations through :class:`GainMemo`, which memoises
values per selected-tuple — the knapsack sweep re-visits the same
(selection, item) pairs across threshold passes and pays only once.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Hashable, Sequence, TypeVar

Item = TypeVar("Item", bound=Hashable)

GainFunction = Callable[[tuple], float]
"""Maps a tuple of selected items to the objective value (cost savings)."""


class GainMemo:
    """A memoising wrapper around a gain oracle.

    Keys evaluations by the exact selected-tuple, so repeated questions
    about the same set (the knapsack threshold sweep, callers probing the
    same prefix) hit the memo instead of the oracle.  ``evaluations``
    counts true oracle calls — the quantity the lazy-greedy tests assert
    on.
    """

    def __init__(self, gain: GainFunction) -> None:
        self._gain = gain
        self._memo: dict[tuple, float] = {}
        self.evaluations = 0

    def __call__(self, selected: tuple) -> float:
        value = self._memo.get(selected)
        if value is None:
            value = self._gain(selected)
            self._memo[selected] = value
            self.evaluations += 1
        return value


def maximize_cardinality(items: Sequence[Item], gain: GainFunction,
                         limit: int) -> list[Item]:
    """Lazy greedy (CELF): repeatedly add the item with the largest
    positive marginal gain until *limit* items are selected or no item
    helps.

    Equivalent to :func:`maximize_cardinality_eager` on monotone
    submodular ``gain`` (same selection, same order) but evaluates the
    gain oracle lazily: each round pops the stale upper bound from a
    max-heap, refreshes it, and either selects the item (its fresh gain
    still tops the heap) or pushes it back.  Ties break toward the
    earlier item in *items*, exactly as the eager loop's strict ``>``
    comparison does.
    """
    if limit <= 0 or not items:
        return []
    memo = gain if isinstance(gain, GainMemo) else GainMemo(gain)
    current_value = memo(())
    # Heap entries: (-stale gain, original index, item, freshness round).
    # The index both breaks gain ties toward earlier items and keeps the
    # heap comparison away from arbitrary item types.
    heap: list[tuple[float, int, Item, int]] = []
    for index, item in enumerate(items):
        delta = memo((item,)) - current_value
        heap.append((-delta, index, item, 0))
    heapq.heapify(heap)

    selected: list[Item] = []
    while heap and len(selected) < limit:
        neg_delta, index, item, round_ = heapq.heappop(heap)
        if -neg_delta <= 0.0:
            # The largest (upper-bounded) gain is non-positive; by
            # submodularity no fresh gain can beat it.  Done.
            break
        if round_ == len(selected):
            # Fresh for the current selection: every other entry is an
            # upper bound (submodularity) — but only up to floating-point
            # rounding.  A competitor whose stale bound sits a few ulps
            # below this gain can refresh *above* it (current_value is a
            # running sum, so fresh gains are not associativity-exact),
            # and the eager loop would then see the tie and keep the
            # lower index.  Refresh every stale entry inside that tie
            # band before committing, so heap order — (-gain, index) —
            # reproduces the eager selection exactly.
            gain = -neg_delta
            band = 1e-9 * max(1.0, abs(gain))
            stale_near = [entry for entry in heap
                          if entry[3] != len(selected)
                          and -entry[0] >= gain - band]
            if stale_near:
                heapq.heappush(heap, (neg_delta, index, item, round_))
                base = tuple(selected)
                for entry in stale_near:
                    heap.remove(entry)
                    delta = memo(base + (entry[2],)) - current_value
                    heap.append((-delta, entry[1], entry[2],
                                 len(selected)))
                heapq.heapify(heap)
                continue
            selected.append(item)
            current_value += gain
            continue
        delta = memo(tuple(selected) + (item,)) - current_value
        heapq.heappush(heap, (-delta, index, item, len(selected)))
    return selected


def maximize_cardinality_eager(items: Sequence[Item], gain: GainFunction,
                               limit: int) -> list[Item]:
    """The classical Nemhauser/Wolsey greedy loop, kept as the reference
    implementation the lazy variant is tested against (it re-evaluates
    every remaining item's marginal gain each iteration)."""
    if limit <= 0:
        return []
    memo = gain if isinstance(gain, GainMemo) else GainMemo(gain)
    selected: list[Item] = []
    remaining = list(items)
    current_value = memo(())
    while remaining and len(selected) < limit:
        best_index = -1
        best_delta = 0.0
        for index, item in enumerate(remaining):
            delta = memo(tuple(selected) + (item,)) - current_value
            if delta > best_delta:
                best_delta = delta
                best_index = index
        if best_index < 0:
            break
        selected.append(remaining.pop(best_index))
        current_value += best_delta
    return selected


def maximize_knapsack(items: Sequence[Item], gain: GainFunction,
                      weights: Callable[[Item], Sequence[float]],
                      budgets: Sequence[float],
                      epsilon: float = 0.1) -> list[Item]:
    """Density-threshold greedy under multi-dimensional knapsack budgets.

    Passes run over geometrically decreasing density thresholds (factor
    ``1 + epsilon`` apart, as in Yu et al.); within a pass any feasible
    item whose marginal-gain density meets the threshold is taken.  The
    result is compared against the best single feasible item and the better
    of the two is returned.  Gain evaluations are memoised through
    :class:`GainMemo`, so re-examining an item at a lower threshold with
    an unchanged selection costs no oracle call.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    budgets = list(budgets)
    feasible_items = [item for item in items
                      if _fits(weights(item), [0.0] * len(budgets), budgets)]
    if not feasible_items:
        return []

    memo = gain if isinstance(gain, GainMemo) else GainMemo(gain)
    base_value = memo(())

    # Establish the threshold range from the best single-item density.
    densities = []
    best_single: Item | None = None
    best_single_gain = -math.inf
    for item in feasible_items:
        item_gain = memo((item,)) - base_value
        if item_gain > best_single_gain:
            best_single_gain = item_gain
            best_single = item
        total_weight = max(sum(weights(item)), 1e-12)
        if item_gain > 0:
            densities.append(item_gain / total_weight)
    if not densities:
        return []
    max_density = max(densities)
    min_density = max(max_density * epsilon / max(len(feasible_items), 1),
                      1e-12)

    selected: list[Item] = []
    used = [0.0] * len(budgets)
    current_value = base_value
    threshold = max_density
    while threshold >= min_density:
        progress = False
        for item in feasible_items:
            if item in selected:
                continue
            item_weights = weights(item)
            if not _fits(item_weights, used, budgets):
                continue
            delta = memo(tuple(selected) + (item,)) - current_value
            if delta <= 0:
                continue
            density = delta / max(sum(item_weights), 1e-12)
            if density >= threshold:
                selected.append(item)
                used = [u + w for u, w in zip(used, item_weights)]
                current_value += delta
                progress = True
        if not progress:
            threshold /= (1.0 + epsilon)

    greedy_gain = current_value - base_value
    if best_single is not None and best_single_gain > greedy_gain:
        return [best_single]
    return selected


def _fits(item_weights: Sequence[float], used: Sequence[float],
          budgets: Sequence[float]) -> bool:
    epsilon = 1e-9
    return all(u + w <= b + epsilon
               for u, w, b in zip(used, item_weights, budgets))
