"""Algorithm 4: select colored plots and assign them to rows.

Each (colored plot, row) combination is one item of a submodular
maximization problem; the item's weight vector is the plot's width on the
coordinate of its row (``p.width * e_r`` in the pseudo-code) and every
row's budget is the screen width.  The objective is the cost savings of
the induced multiplot (Definition 6), which Theorem 3 shows to be
submodular and Lemma 1 monotone.

One subtlety the paper's pseudo-code glosses over: the items are not
independent — the many colored/prefix *versions* of one template are
mutually exclusive (selecting two would duplicate query results).  A plain
density greedy therefore gets stuck after picking a small high-density
version of a template: it can never "upgrade" it to a version with more
bars.  Our ``knapsack`` variant fixes this with exchange moves: each step
either adds a version of an unselected template or *replaces* the selected
version of a template, always taking the feasible move with the largest
gain-in-savings (density-weighted for pure additions).  The
``cardinality`` variant is the paper's fixed-width alternative using the
classical Nemhauser greedy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.greedy.submodular import maximize_cardinality
from repro.core.model import Multiplot, Plot
from repro.core.problem import MultiplotSelectionProblem
from repro.nlq.templates import QueryTemplate


@dataclass(frozen=True)
class PlotRowItem:
    """One plot placed in one row — the item type of Algorithm 4."""

    plot: Plot
    row: int


def selection_savings(plots, cost_model) -> float:
    """Cost savings of a plot selection, computed from plot contents.

    Equivalent to ``cost_model.cost_savings(multiplot, candidates)`` but
    in O(total bars): bar probabilities already live on the bars, and the
    model's expected cost is a function of (r_R, r_V, b, b_R, p, p_R)
    only.  Queries shown more than once count their probability at the
    first (row-major) occurrence, matching ``Multiplot.bar_for``.
    """
    r_red = 0.0
    r_visible = 0.0
    bars = 0
    red_bars = 0
    num_plots = 0
    red_plots = 0
    seen: set = set()
    for plot in plots:
        num_plots += 1
        plot_has_red = False
        for bar in plot.bars:
            bars += 1
            if bar.highlighted:
                red_bars += 1
                plot_has_red = True
            if bar.query in seen:
                continue
            seen.add(bar.query)
            if bar.highlighted:
                r_red += bar.probability
            else:
                r_visible += bar.probability
        if plot_has_red:
            red_plots += 1
    d_red = cost_model.d_red(red_bars, red_plots)
    d_visible = cost_model.d_visible(bars, red_bars, num_plots, red_plots)
    r_missing = max(0.0, 1.0 - r_red - r_visible)
    expected = (r_red * d_red + r_visible * d_visible
                + r_missing * cost_model.miss_cost)
    return cost_model.miss_cost - expected


def build_multiplot(items: tuple[PlotRowItem, ...],
                    num_rows: int) -> Multiplot:
    """Assemble selected items into a multiplot (rows keep item order)."""
    rows: list[list[Plot]] = [[] for _ in range(num_rows)]
    for item in items:
        rows[item.row].append(item.plot)
    return Multiplot(tuple(tuple(row) for row in rows))


def pick_plots(problem: MultiplotSelectionProblem,
               colored_plots: list[Plot],
               variant: str = "knapsack",
               epsilon: float = 0.1,
               max_plots: int | None = None,
               max_iterations: int = 64) -> Multiplot:
    """Select a feasible subset of *colored_plots* maximizing cost savings."""
    if variant == "knapsack":
        return _exchange_greedy(problem, colored_plots, max_iterations)
    if variant == "cardinality":
        return _cardinality_greedy(problem, colored_plots, max_plots)
    raise ValueError(f"unknown pick_plots variant {variant!r}")


# ---------------------------------------------------------------------------
# Knapsack variant with exchange moves
# ---------------------------------------------------------------------------


def _exchange_greedy(problem: MultiplotSelectionProblem,
                     colored_plots: list[Plot],
                     max_iterations: int) -> Multiplot:
    """Best of: density-scored run, raw-gain run, best single item.

    Running under both addition-scoring rules and keeping the best single
    item mirrors the structure of knapsack-constrained submodular greedy
    guarantees (the density rule alone can be arbitrarily bad without the
    single-item fallback).
    """
    geometry = problem.geometry
    num_rows = geometry.num_rows

    items: list[PlotRowItem] = []
    for plot in colored_plots:
        if geometry.plot_units(plot) > geometry.width_units:
            continue
        for row in range(num_rows):
            items.append(PlotRowItem(plot, row))

    def savings_of(selection: tuple[PlotRowItem, ...]) -> float:
        return selection_savings((item.plot for item in selection),
                                 problem.cost_model)

    candidates: list[tuple[PlotRowItem, ...]] = [
        _exchange_run(problem, items, max_iterations, by_density=True),
        _exchange_run(problem, items, max_iterations, by_density=False),
    ]
    if items:
        best_single = max(items, key=lambda item: savings_of((item,)))
        candidates.append((best_single,))
    best = max(candidates, key=savings_of, default=())
    return build_multiplot(tuple(best), num_rows)


def _exchange_run(problem: MultiplotSelectionProblem,
                  items: list[PlotRowItem], max_iterations: int,
                  by_density: bool) -> tuple[PlotRowItem, ...]:
    """One greedy pass with add/replace moves over template slots."""
    geometry = problem.geometry
    num_rows = geometry.num_rows
    width = geometry.width_units

    selected: dict[QueryTemplate, PlotRowItem] = {}
    row_used = [0.0] * num_rows

    def savings(selection: dict[QueryTemplate, PlotRowItem]) -> float:
        return selection_savings(
            (item.plot for item in selection.values()),
            problem.cost_model)

    current = savings(selected)
    for _ in range(max_iterations):
        best_move: PlotRowItem | None = None
        best_delta = 0.0
        best_score = 0.0
        for item in items:
            template = item.plot.template
            replaced = selected.get(template)
            if replaced is not None and replaced == item:
                continue
            # Feasibility of swapping/adding under the row budgets.
            usage = list(row_used)
            if replaced is not None:
                usage[replaced.row] -= geometry.plot_units(replaced.plot)
            usage[item.row] += geometry.plot_units(item.plot)
            if usage[item.row] > width + 1e-9:
                continue
            tentative = dict(selected)
            tentative[template] = item
            delta = savings(tentative) - current
            if delta <= 1e-9:
                continue
            # Replacements always compete on raw gain (their width delta
            # can be zero or negative); additions per the scoring rule.
            if replaced is None and by_density:
                score = delta / max(geometry.plot_units(item.plot), 1e-9)
            else:
                score = delta
            if best_move is None or score > best_score:
                best_move = item
                best_delta = delta
                best_score = score
        if best_move is None:
            break
        template = best_move.plot.template
        replaced = selected.get(template)
        if replaced is not None:
            row_used[replaced.row] -= geometry.plot_units(replaced.plot)
        selected[template] = best_move
        row_used[best_move.row] += geometry.plot_units(best_move.plot)
        current += best_delta
    return tuple(selected.values())


# ---------------------------------------------------------------------------
# Cardinality variant (fixed-width plots, Nemhauser greedy)
# ---------------------------------------------------------------------------


def _cardinality_greedy(problem: MultiplotSelectionProblem,
                        colored_plots: list[Plot],
                        max_plots: int | None) -> Multiplot:
    geometry = problem.geometry
    num_rows = geometry.num_rows

    items: list[PlotRowItem] = []
    for plot in colored_plots:
        if geometry.plot_units(plot) > geometry.width_units:
            continue
        for row in range(num_rows):
            items.append(PlotRowItem(plot, row))

    if max_plots is None:
        widest = max((geometry.plot_units(plot)
                      for plot in colored_plots), default=1.0)
        per_row = max(1, int(geometry.width_units // widest))
        max_plots = per_row * num_rows

    def gain(selection: tuple[PlotRowItem, ...]) -> float:
        templates = [item.plot.template for item in selection]
        if len(set(templates)) != len(templates):
            return float("-inf")
        multiplot = build_multiplot(selection, num_rows)
        if not geometry.fits(multiplot):
            return float("-inf")
        return selection_savings((item.plot for item in selection),
                                 problem.cost_model)

    selected = maximize_cardinality(items, gain, max_plots)
    return build_multiplot(tuple(selected), num_rows)
