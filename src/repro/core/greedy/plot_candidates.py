"""Algorithm 2: generate uncolored plot candidates.

Queries are grouped by template; for each template we emit one candidate
plot per *probability prefix* of its query group (the most likely query,
the two most likely, ...), up to the largest prefix that could ever fit on
the screen.  Preferring more likely queries under space pressure is the
paper's stated heuristic ("we prefer adding more likely queries").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import ScreenGeometry
from repro.core.problem import MultiplotSelectionProblem
from repro.nlq.candidates import CandidateQuery
from repro.nlq.templates import QueryTemplate


@dataclass(frozen=True)
class UncoloredPlot:
    """A candidate plot before highlighting decisions: a template plus the
    probability-ordered queries it shows."""

    template: QueryTemplate
    members: tuple[CandidateQuery, ...]

    @property
    def probability_mass(self) -> float:
        return sum(member.probability for member in self.members)


def plot_candidates(problem: MultiplotSelectionProblem,
                    max_plots_per_template: int | None = None,
                    ) -> list[UncoloredPlot]:
    """All prefix plots for all templates of *problem*.

    ``max_plots_per_template`` optionally caps the number of prefixes per
    template (an extra knob beyond the paper, useful to bound work for very
    wide screens).
    """
    geometry: ScreenGeometry = problem.geometry
    candidates: list[UncoloredPlot] = []
    for template, members in problem.queries_by_template().items():
        capacity = geometry.max_bars(template)
        if capacity <= 0:
            continue  # the title alone exceeds the screen width
        limit = min(len(members), capacity)
        if max_plots_per_template is not None:
            limit = min(limit, max_plots_per_template)
        for prefix in range(1, limit + 1):
            candidates.append(
                UncoloredPlot(template, tuple(members[:prefix])))
    return candidates
