"""The greedy multiplot solver (Section 6 of the paper).

Pipeline (Algorithm 1): generate uncolored plot candidates per query
template (Algorithm 2), expand each into prefix-highlighted colored
versions (Algorithm 3, justified by Theorem 2), pick a subset of plot/row
items by submodular maximization under per-row knapsack constraints
(Algorithm 4, Theorem 3), then polish by removing redundant results and
refilling gaps.
"""

from repro.core.greedy.solver import GreedySolution, GreedySolver

__all__ = ["GreedySolution", "GreedySolver"]
