"""Algorithm 3: colored plot versions.

Theorem 2 shows that some optimal multiplot highlights, within each plot,
exactly the *k* most likely queries for some *k*.  So instead of trying all
``2^bars`` highlight patterns we only generate the ``bars + 1`` probability
prefixes per uncolored plot.
"""

from __future__ import annotations

from repro.core.greedy.plot_candidates import UncoloredPlot
from repro.core.model import Bar, Plot


def color_plot(uncolored: UncoloredPlot, num_highlighted: int) -> Plot:
    """The plot highlighting the ``num_highlighted`` most likely queries."""
    if not 0 <= num_highlighted <= len(uncolored.members):
        raise ValueError(
            f"cannot highlight {num_highlighted} of "
            f"{len(uncolored.members)} bars")
    bars = tuple(
        Bar(
            query=member.query,
            probability=member.probability,
            label=uncolored.template.x_label(member.query),
            highlighted=index < num_highlighted,
        )
        for index, member in enumerate(uncolored.members)
    )
    return Plot(template=uncolored.template, bars=bars)


def add_colors(uncolored_plots: list[UncoloredPlot],
               max_highlighted: int | None = None) -> list[Plot]:
    """All prefix-highlighted versions of all candidate plots.

    For each uncolored plot with ``n`` bars this emits versions with
    ``0..n`` highlights (optionally capped by ``max_highlighted``).
    """
    colored: list[Plot] = []
    for uncolored in uncolored_plots:
        limit = len(uncolored.members)
        if max_highlighted is not None:
            limit = min(limit, max_highlighted)
        for k in range(0, limit + 1):
            colored.append(color_plot(uncolored, k))
    return colored
