"""Algorithm 1: the greedy multiplot solver façade."""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.greedy.coloring import add_colors
from repro.core.greedy.pick_plots import pick_plots
from repro.core.greedy.plot_candidates import plot_candidates
from repro.core.greedy.polish import polish
from repro.core.model import Multiplot
from repro.core.problem import MultiplotSelectionProblem


@dataclass(frozen=True)
class GreedySolution:
    """Output of the greedy solver with timing and cost metadata."""

    multiplot: Multiplot
    expected_cost: float
    elapsed_seconds: float
    num_plot_candidates: int
    num_colored_candidates: int


class GreedySolver:
    """Runs the four-phase greedy pipeline of Section 6.2.

    Parameters
    ----------
    variant:
        ``"knapsack"`` (multi-dimensional knapsack greedy, the default) or
        ``"cardinality"`` (fixed-width Nemhauser variant).
    epsilon:
        Density-threshold decay for the knapsack greedy; smaller values
        trade running time for solution quality (Theorem 8's epsilon).
    max_highlighted:
        Optional cap on highlights per plot (None considers all prefixes).
    """

    def __init__(self, variant: str = "knapsack", epsilon: float = 0.1,
                 max_highlighted: int | None = None,
                 apply_polish: bool = True) -> None:
        self.variant = variant
        self.epsilon = epsilon
        self.max_highlighted = max_highlighted
        self.apply_polish = apply_polish

    def solve(self, problem: MultiplotSelectionProblem) -> GreedySolution:
        start = time.perf_counter()
        uncolored = plot_candidates(problem)
        colored = add_colors(uncolored, self.max_highlighted)
        multiplot = pick_plots(problem, colored, variant=self.variant,
                               epsilon=self.epsilon)
        if self.apply_polish:
            multiplot = polish(problem, multiplot)
        elapsed = time.perf_counter() - start
        return GreedySolution(
            multiplot=multiplot,
            expected_cost=problem.evaluate(multiplot),
            elapsed_seconds=elapsed,
            num_plot_candidates=len(uncolored),
            num_colored_candidates=len(colored),
        )
