"""The final cleanup step of Algorithm 1 ("Finalize").

Removes results that appear in multiple plots, keeping the occurrence that
contributes most (a highlighted bar beats an unhighlighted one; ties go to
the earlier plot in row-major order), then refills each vacated slot with
the most likely candidate query that matches the plot's template and is not
yet displayed anywhere.
"""

from __future__ import annotations

from repro.core.model import Bar, Multiplot, Plot
from repro.core.problem import MultiplotSelectionProblem
from repro.sqldb.query import AggregateQuery


def polish(problem: MultiplotSelectionProblem,
           multiplot: Multiplot) -> Multiplot:
    """Deduplicate results across plots and refill the gaps."""
    keep = _choose_occurrences(multiplot)
    displayed: set[AggregateQuery] = set(keep)

    groups = problem.queries_by_template()
    new_rows: list[tuple[Plot, ...]] = []
    for row in multiplot.rows:
        new_row: list[Plot] = []
        for plot_index, plot in enumerate(row):
            kept_bars = [bar for bar in plot.bars
                         if keep.get(bar.query) == _position(multiplot,
                                                             plot)]
            removed = plot.num_bars - len(kept_bars)
            if removed:
                kept_bars.extend(
                    _refill(problem, plot, kept_bars, removed, displayed,
                            groups))
            if kept_bars:
                new_row.append(Plot(plot.template, tuple(kept_bars)))
        new_rows.append(tuple(new_row))
    return Multiplot(tuple(new_rows))


def _position(multiplot: Multiplot, plot: Plot) -> int:
    """Row-major index of *plot* within *multiplot*."""
    for index, candidate in enumerate(multiplot.plots()):
        if candidate is plot:
            return index
    raise ValueError("plot not part of multiplot")


def _choose_occurrences(multiplot: Multiplot) -> dict[AggregateQuery, int]:
    """Best plot position (row-major) for each displayed query."""
    best: dict[AggregateQuery, tuple[int, int]] = {}
    for index, plot in enumerate(multiplot.plots()):
        for bar in plot.bars:
            # Rank: highlighted occurrences win, then earlier plots.
            rank = (0 if bar.highlighted else 1, index)
            if bar.query not in best or rank < best[bar.query]:
                best[bar.query] = rank
    return {query: rank[1] for query, rank in best.items()}


def _refill(problem: MultiplotSelectionProblem, plot: Plot,
            kept_bars: list[Bar], slots: int,
            displayed: set[AggregateQuery], groups) -> list[Bar]:
    """Up to *slots* new bars for *plot* from undisplayed candidates."""
    members = groups.get(plot.template, [])
    additions: list[Bar] = []
    for member in members:
        if len(additions) == slots:
            break
        if member.query in displayed:
            continue
        additions.append(Bar(
            query=member.query,
            probability=member.probability,
            label=plot.template.x_label(member.query),
            highlighted=False,
        ))
        displayed.add(member.query)
    return additions
