"""Multiplot selection as an integer linear program (Section 5).

Variables (binary unless noted):

* ``p[i][r]`` — template *i*'s plot is shown in row *r*.
* ``q[k][i][r]`` / ``h[k][i][r]`` — candidate *k*'s result is shown /
  highlighted in plot *i*, row *r* (introduced only for compatible pairs).
* ``s[i][r]`` — plot *i* in row *r* contains at least one highlighted bar.
* ``q_k`` / ``h_k`` / ``d_k`` (continuous, forced binary by equalities) —
  candidate *k* is displayed / highlighted / displayed-but-unhighlighted.

Constraints: ``q <= p``, ``h <= q``, each query shown at most once, row
width ``sum_i W_i p[i][r] + sum_(k,i) q[k][i][r] <= W``, and the
``s``-consistency constraints of Section 5.3.

Two deviations from the paper's *exposition*, both sanctioned by its
footnote 3 ("we use slightly different auxiliary variables ... compared to
our actual implementation"):

1. **Dominated-template pruning.**  The cost model never looks at which
   template a plot uses, only at bar/plot counts; so if template B can show
   a superset of template A's queries at no greater base width, any plot of
   A can be replaced by a plot of B.  Pruning dominated templates shrinks
   the model without changing the optimum.
2. **Aggregate products.**  Instead of ``O(n_q^2)`` pairwise binary
   products we introduce the continuous aggregates ``B_R = sum h_k``,
   ``B_D = sum d_k``, ``P_R = sum s``, ``P_D = sum (p - s)`` and linearise
   the ``O(n_q)`` products ``x_k * aggregate`` with big-M bounds (M =
   screen capacity).  Objective values are identical at integral points.

The processing-cost extension of Section 8.1 adds group variables ``g``
with coverage constraints ``q_k <= sum_(g in G(k)) g`` and either a budget
constraint or a weighted objective term over group costs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.ilp.bnb import solve_with_bnb
from repro.core.ilp.highs import solve_with_highs
from repro.core.ilp.modeling import LinExpr, Model, SolveResult, Variable
from repro.core.model import Bar, Multiplot, Plot
from repro.core.problem import MultiplotSelectionProblem
from repro.errors import SolverError
from repro.nlq.templates import QueryTemplate

_BACKENDS = {
    "highs": solve_with_highs,
    "bnb": solve_with_bnb,
}


@dataclass(frozen=True)
class ProcessingGroup:
    """A set of candidates answerable by one (possibly merged) execution."""

    cost: float
    candidate_indices: frozenset[int]

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise SolverError("processing group cost must be non-negative")
        if not self.candidate_indices:
            raise SolverError("processing group covers no candidates")


@dataclass(frozen=True)
class IlpSolution:
    """Solver output with optimality/timeout metadata."""

    multiplot: Multiplot
    expected_cost: float
    objective: float
    optimal: bool
    timed_out: bool
    elapsed_seconds: float
    num_variables: int
    num_constraints: int
    selected_groups: tuple[int, ...] = field(default=())
    processing_cost: float = 0.0


class IlpSolver:
    """Builds and solves the Section 5 ILP.

    Parameters
    ----------
    backend:
        ``"highs"`` (scipy MILP) or ``"bnb"`` (pure-Python branch & bound).
    timeout_seconds:
        Wall-clock limit; on expiry the incumbent is returned with
        ``timed_out=True`` (matching the paper's behaviour under the one-
        second interactive budget).  ``None`` disables the limit.
    processing_weight:
        Weight of total processing-group cost added to the objective (the
        Figure 9 "ILP" method uses a small positive weight to prefer cheap
        multiplots among near-ties; zero ignores processing cost).
    prune_templates:
        Disable only for fidelity experiments; pruning preserves optima.
    """

    def __init__(self, backend: str = "highs",
                 timeout_seconds: float | None = 1.0,
                 processing_weight: float = 0.0,
                 prune_templates: bool = True) -> None:
        if backend not in _BACKENDS:
            raise SolverError(
                f"unknown backend {backend!r}; choose from "
                f"{sorted(_BACKENDS)}")
        self.backend = backend
        self.timeout_seconds = timeout_seconds
        self.processing_weight = processing_weight
        self.prune_templates = prune_templates

    def solve(self, problem: MultiplotSelectionProblem,
              processing_groups: list[ProcessingGroup] | None = None,
              timeout_seconds: float | None = None) -> IlpSolution:
        """Solve *problem*, optionally with processing-cost machinery."""
        build_start = time.perf_counter()
        formulation = _Formulation(problem, processing_groups,
                                   self.processing_weight,
                                   self.prune_templates)
        compiled = formulation.model.compile()
        timeout = (timeout_seconds if timeout_seconds is not None
                   else self.timeout_seconds)
        if timeout is not None:
            # Model construction counts against the interactive budget.
            timeout = max(1e-3, timeout - (time.perf_counter() - build_start))
        result = _BACKENDS[self.backend](compiled, timeout)
        multiplot = formulation.extract_multiplot(result)
        selected_groups = formulation.extract_groups(result)
        processing_cost = sum(
            formulation.groups[g].cost for g in selected_groups)
        return IlpSolution(
            multiplot=multiplot,
            expected_cost=problem.evaluate(multiplot),
            objective=result.objective,
            optimal=result.optimal,
            timed_out=result.timed_out,
            elapsed_seconds=time.perf_counter() - build_start,
            num_variables=formulation.model.num_variables,
            num_constraints=formulation.model.num_constraints,
            selected_groups=selected_groups,
            processing_cost=processing_cost,
        )


def prune_dominated_templates(
        problem: MultiplotSelectionProblem,
) -> list[tuple[QueryTemplate, list[int]]]:
    """Templates with their member candidate indices, dominated ones removed.

    Template B dominates A when B's member set is a superset of A's and
    B's base width does not exceed A's: every plot over A can be rebuilt
    over B at equal cost-model value within equal space.
    """
    geometry = problem.geometry
    candidate_index = {c.query: i for i, c in enumerate(problem.candidates)}
    entries: list[tuple[QueryTemplate, frozenset[int], float]] = []
    for template, members in problem.queries_by_template().items():
        if geometry.max_bars(template) <= 0:
            continue
        indices = frozenset(candidate_index[m.query] for m in members)
        entries.append((template, indices,
                        geometry.plot_base_units(template)))
    # Deterministic order: larger member sets and narrower widths first.
    entries.sort(key=lambda e: (-len(e[1]), e[2], e[0].title()))
    kept: list[tuple[QueryTemplate, frozenset[int], float]] = []
    for template, members, width in entries:
        dominated = any(members <= k_members and k_width <= width
                        for _, k_members, k_width in kept)
        if not dominated:
            kept.append((template, members, width))
    ordered_members = []
    probabilities = [c.probability for c in problem.candidates]
    for template, members, _ in kept:
        ordered = sorted(members,
                         key=lambda k: (-probabilities[k], k))
        ordered_members.append((template, ordered))
    return ordered_members


class _Formulation:
    """The variables/constraints/objective for one problem instance."""

    def __init__(self, problem: MultiplotSelectionProblem,
                 processing_groups: list[ProcessingGroup] | None,
                 processing_weight: float,
                 prune_templates: bool) -> None:
        self.problem = problem
        self.groups = list(processing_groups or [])
        self.model = Model("multiplot-selection")
        self.templates: list[QueryTemplate] = []
        self.members: list[list[int]] = []
        self.capacities: list[int] = []
        self.p_vars: dict[tuple[int, int], Variable] = {}
        self.s_vars: dict[tuple[int, int], Variable] = {}
        self.q_vars: dict[tuple[int, int, int], Variable] = {}
        self.h_vars: dict[tuple[int, int, int], Variable] = {}
        self.q_any: list[Variable] = []
        self.h_any: list[Variable] = []
        self.d_any: list[Variable] = []
        self.g_vars: list[Variable] = []
        self._build(processing_weight, prune_templates)

    # -- construction ---------------------------------------------------

    def _build(self, processing_weight: float,
               prune_templates: bool) -> None:
        problem = self.problem
        model = self.model
        geometry = problem.geometry
        candidates = problem.candidates
        num_rows = geometry.num_rows

        if prune_templates:
            template_members = prune_dominated_templates(problem)
        else:
            candidate_index = {c.query: i for i, c in enumerate(candidates)}
            template_members = []
            for template, members in problem.queries_by_template().items():
                if geometry.max_bars(template) <= 0:
                    continue
                template_members.append(
                    (template,
                     [candidate_index[m.query] for m in members]))

        for template, members in template_members:
            self.templates.append(template)
            self.members.append(members)
            self.capacities.append(geometry.max_bars(template))

        # Plot and bar-assignment variables.
        for i in range(len(self.templates)):
            for r in range(num_rows):
                self.p_vars[i, r] = model.binary(f"p[{i},{r}]")
                self.s_vars[i, r] = model.binary(f"s[{i},{r}]")
                for k in self.members[i]:
                    self.q_vars[k, i, r] = model.binary(f"q[{k},{i},{r}]")
                    self.h_vars[k, i, r] = model.binary(f"h[{k},{i},{r}]")

        # q <= p, h <= q.
        for (k, i, r), q_var in self.q_vars.items():
            model.add_le(LinExpr({q_var.index: 1.0,
                                  self.p_vars[i, r].index: -1.0}))
            h_var = self.h_vars[k, i, r]
            model.add_le(LinExpr({h_var.index: 1.0, q_var.index: -1.0}))

        # Placement lists per candidate.
        placements: list[list[tuple[int, int]]] = [
            [] for _ in range(len(candidates))]
        for (k, i, r) in self.q_vars:
            placements[k].append((i, r))

        # Each query shown at most once; q_k/h_k/d_k aggregates (exact
        # equalities so reading costs cannot be understated).
        for k in range(len(candidates)):
            q_k = model.continuous(f"qAny[{k}]")
            h_k = model.continuous(f"hAny[{k}]")
            d_k = model.continuous(f"dAny[{k}]")
            self.q_any.append(q_k)
            self.h_any.append(h_k)
            self.d_any.append(d_k)
            sum_q = LinExpr({q_k.index: -1.0})
            sum_h = LinExpr({h_k.index: -1.0})
            for (i, r) in placements[k]:
                sum_q.add_term(self.q_vars[k, i, r], 1.0)
                sum_h.add_term(self.h_vars[k, i, r], 1.0)
            model.add_eq(sum_q)
            model.add_eq(sum_h)
            model.add_le(LinExpr({q_k.index: 1.0}, constant=-1.0))
            model.add_eq(LinExpr({d_k.index: -1.0, q_k.index: 1.0,
                                  h_k.index: -1.0}))

        # s-consistency: s <= p, s <= sum h, n_i * s >= sum h.
        highlight_by_slot: dict[tuple[int, int], list[Variable]] = {}
        for (k, i, r), h_var in self.h_vars.items():
            highlight_by_slot.setdefault((i, r), []).append(h_var)
        for (i, r), s_var in self.s_vars.items():
            model.add_le(LinExpr({s_var.index: 1.0,
                                  self.p_vars[i, r].index: -1.0}))
            slot_vars = highlight_by_slot.get((i, r), [])
            if not slot_vars:
                model.add_le(LinExpr({s_var.index: 1.0}))
                continue
            upper = LinExpr({s_var.index: 1.0})
            lower = LinExpr({s_var.index: float(self.capacities[i])})
            for h_var in slot_vars:
                upper.add_term(h_var, -1.0)
                lower.add_term(h_var, -1.0)
            model.add_le(upper)   # s <= sum h
            model.add_ge(lower)   # n_i * s >= sum h

        # Row width constraints.
        width = geometry.width_units
        row_exprs: list[LinExpr] = []
        for r in range(num_rows):
            row_width = LinExpr(constant=-width)
            for i, template in enumerate(self.templates):
                row_width.add_term(self.p_vars[i, r],
                                   geometry.plot_base_units(template))
            for (k, i, rr), q_var in self.q_vars.items():
                if rr == r:
                    row_width.add_term(q_var, 1.0)
            model.add_le(row_width, name=f"width[{r}]")
            row_exprs.append(row_width)

        # Symmetry breaking: rows are interchangeable, so order them by
        # decreasing load (bar count) to prune mirrored branches.
        for r in range(num_rows - 1):
            ordering = LinExpr()
            for (k, i, rr), q_var in self.q_vars.items():
                if rr == r:
                    ordering.add_term(q_var, -1.0)
                elif rr == r + 1:
                    ordering.add_term(q_var, 1.0)
            model.add_le(ordering, name=f"row-order[{r}]")

        self._build_objective()
        self._build_processing(processing_weight)

    def _screen_capacity(self) -> tuple[float, float]:
        """Upper bounds (M) on total bars and total plots on the screen."""
        geometry = self.problem.geometry
        if not self.templates:
            return 0.0, 0.0
        min_base = min(geometry.plot_base_units(t) for t in self.templates)
        per_row_bars = max(0.0, geometry.width_units - min_base)
        max_bars = min(float(len(self.problem.candidates)),
                       per_row_bars * geometry.num_rows)
        per_row_plots = max(1.0, geometry.width_units // (min_base + 1.0))
        max_plots = min(float(len(self.templates)) * geometry.num_rows,
                        per_row_plots * geometry.num_rows)
        return max_bars, max_plots

    def _build_objective(self) -> None:
        problem = self.problem
        model = self.model
        cost_model = problem.cost_model
        candidates = problem.candidates
        c_b = cost_model.bar_cost
        c_p = cost_model.plot_cost
        d_m = cost_model.miss_cost
        max_bars, max_plots = self._screen_capacity()

        # Aggregate totals: B_R (red bars), B_D (plain displayed bars),
        # P_R (plots with red), P_D (plots without red).
        b_red = model.continuous("B_R", upper=max(max_bars, 1.0))
        b_plain = model.continuous("B_D", upper=max(max_bars, 1.0))
        p_red = model.continuous("P_R", upper=max(max_plots, 1.0))
        p_plain = model.continuous("P_D", upper=max(max_plots, 1.0))
        expr_b_red = LinExpr({b_red.index: -1.0})
        expr_b_plain = LinExpr({b_plain.index: -1.0})
        for k in range(len(candidates)):
            expr_b_red.add_term(self.h_any[k], 1.0)
            expr_b_plain.add_term(self.d_any[k], 1.0)
        model.add_eq(expr_b_red)
        model.add_eq(expr_b_plain)
        expr_p_red = LinExpr({p_red.index: -1.0})
        expr_p_plain = LinExpr({p_plain.index: -1.0})
        for (i, r), s_var in self.s_vars.items():
            expr_p_red.add_term(s_var, 1.0)
            expr_p_plain.add_term(s_var, -1.0)
            expr_p_plain.add_term(self.p_vars[i, r], 1.0)
        model.add_eq(expr_p_red)
        model.add_eq(expr_p_plain)

        def gated(indicator: Variable, aggregate: Variable,
                  big_m: float, name: str) -> Variable:
            """z = indicator * aggregate via big-M lower bounds.

            Only lower bounds are needed: every use has a non-negative
            objective coefficient, so minimisation pushes z down onto them.
            """
            z = model.continuous(name, upper=max(big_m, 1.0))
            # z >= aggregate - M * (1 - indicator)
            model.add_ge(LinExpr({
                z.index: 1.0,
                aggregate.index: -1.0,
                indicator.index: -big_m,
            }, constant=big_m), name=name)
            return z

        objective = LinExpr()
        residual = max(0.0, 1.0 - sum(c.probability for c in candidates))
        objective.add_constant(residual * d_m)

        for k, candidate in enumerate(candidates):
            r_k = candidate.probability
            if r_k <= 0.0:
                continue
            h_k = self.h_any[k]
            d_k = self.d_any[k]
            objective.add_constant(r_k * d_m)
            objective.add_term(self.q_any[k], -r_k * d_m)
            # Highlighted case: D_R = B_R * c_B/2 + P_R * c_P/2.
            objective.add_term(
                gated(h_k, b_red, max_bars, f"hBR[{k}]"), r_k * c_b / 2.0)
            objective.add_term(
                gated(h_k, p_red, max_plots, f"hPR[{k}]"), r_k * c_p / 2.0)
            # Displayed-unhighlighted: 2*D_R + B_D*c_B/2 + P_D*c_P/2.
            objective.add_term(
                gated(d_k, b_red, max_bars, f"dBR[{k}]"), r_k * c_b)
            objective.add_term(
                gated(d_k, p_red, max_plots, f"dPR[{k}]"), r_k * c_p)
            objective.add_term(
                gated(d_k, b_plain, max_bars, f"dBD[{k}]"),
                r_k * c_b / 2.0)
            objective.add_term(
                gated(d_k, p_plain, max_plots, f"dPD[{k}]"),
                r_k * c_p / 2.0)
        self._objective = objective
        model.minimize(objective)

    def _build_processing(self, processing_weight: float) -> None:
        if not self.groups:
            return
        model = self.model
        problem = self.problem
        covering: dict[int, list[Variable]] = {}
        for g_index, group in enumerate(self.groups):
            g_var = model.binary(f"g[{g_index}]")
            self.g_vars.append(g_var)
            for k in group.candidate_indices:
                covering.setdefault(k, []).append(g_var)
        for k, q_k in enumerate(self.q_any):
            expr = LinExpr({q_k.index: 1.0})
            for g_var in covering.get(k, []):
                expr.add_term(g_var, -1.0)
            model.add_le(expr, name=f"coverage[{k}]")
        if problem.processing_budget is not None:
            budget = LinExpr(constant=-problem.processing_budget)
            for g_var, group in zip(self.g_vars, self.groups):
                budget.add_term(g_var, group.cost)
            model.add_le(budget, name="processing-budget")
        if processing_weight > 0.0:
            for g_var, group in zip(self.g_vars, self.groups):
                self._objective.add_term(g_var,
                                         processing_weight * group.cost)
            model.minimize(self._objective)

    # -- extraction -------------------------------------------------------

    def extract_multiplot(self, result: SolveResult) -> Multiplot:
        problem = self.problem
        num_rows = problem.geometry.num_rows
        candidates = problem.candidates
        rows: list[list[Plot]] = [[] for _ in range(num_rows)]
        for (i, r), p_var in self.p_vars.items():
            if not result.is_one(p_var):
                continue
            bars: list[Bar] = []
            for k in self.members[i]:
                q_var = self.q_vars[k, i, r]
                if not result.is_one(q_var):
                    continue
                candidate = candidates[k]
                bars.append(Bar(
                    query=candidate.query,
                    probability=candidate.probability,
                    label=self.templates[i].x_label(candidate.query),
                    highlighted=result.is_one(self.h_vars[k, i, r]),
                ))
            if not bars:
                continue  # an empty selected plot carries no information
            bars.sort(key=lambda bar: (-bar.probability, bar.label))
            rows[r].append(Plot(self.templates[i], tuple(bars)))
        return Multiplot(tuple(tuple(row) for row in rows))

    def extract_groups(self, result: SolveResult) -> tuple[int, ...]:
        return tuple(index for index, g_var in enumerate(self.g_vars)
                     if result.is_one(g_var))
