"""The integer-programming multiplot solver (Section 5 of the paper).

* :mod:`repro.core.ilp.modeling` — a small 0/1 MILP modeling layer (the
  Gurobi-API substitute): variables, linear expressions, constraints, and
  automatic linearisation of binary-variable products.
* :mod:`repro.core.ilp.highs` — backend solving models with scipy's HiGHS
  (``scipy.optimize.milp``), with timeout support.
* :mod:`repro.core.ilp.bnb` — a from-scratch branch-and-bound backend over
  LP relaxations (``scipy.optimize.linprog``), removing even the HiGHS MIP
  dependency and giving deterministic timeout semantics.
* :mod:`repro.core.ilp.translate` — the Section 5 formulation (decision
  variables, constraints, objective) plus the Section 8.1 processing-cost
  extension, and extraction of the resulting multiplot.
* :mod:`repro.core.ilp.incremental` — Section 5.4 incremental optimisation
  with exponentially growing timeouts.
"""

from repro.core.ilp.incremental import incremental_solve
from repro.core.ilp.translate import IlpSolution, IlpSolver, ProcessingGroup

__all__ = ["IlpSolution", "IlpSolver", "ProcessingGroup",
           "incremental_solve"]
