"""A from-scratch branch-and-bound MILP backend.

Best-bound search over LP relaxations solved with ``scipy.optimize.linprog``
(HiGHS simplex/IPM — used purely as an LP solver here).  Branching is on
the most fractional integer variable; bounds are tightened by fixing the
variable to 0/1 in the children.  Supports a wall-clock deadline with
incumbent return, which gives the deterministic timeout semantics the
solver-comparison experiments rely on.

This backend exists to (a) drop even the HiGHS *MIP* dependency, (b) serve
as an independent cross-check of :mod:`repro.core.ilp.highs` in tests, and
(c) let the ablation benchmark compare a textbook B&B against a production
MIP solver on the paper's instances.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linprog

from repro.core.ilp.modeling import CompiledModel, SolveResult
from repro.errors import SolverError

_INTEGRALITY_TOLERANCE = 1e-6


@dataclass(order=True)
class _Node:
    """A search node: LP bound plus variable fixings."""

    bound: float
    tie_breaker: int
    fixed_lower: np.ndarray = field(compare=False)
    fixed_upper: np.ndarray = field(compare=False)


def solve_with_bnb(model: CompiledModel,
                   timeout_seconds: float | None = None,
                   max_nodes: int = 200_000) -> SolveResult:
    """Solve *model* by branch and bound.

    Returns the incumbent with ``timed_out=True`` if the deadline or node
    budget is exhausted before optimality is proven.  Raises
    :class:`SolverError` for infeasible models or when the deadline passes
    before any integral incumbent is found.
    """
    start = time.perf_counter()
    deadline = (start + timeout_seconds
                if timeout_seconds is not None else None)
    integer_indices = np.flatnonzero(model.integrality > 0)

    def solve_lp(lower: np.ndarray, upper: np.ndarray):
        result = linprog(
            c=model.c,
            A_ub=model.a_ub if model.a_ub.size else None,
            b_ub=model.b_ub if model.b_ub.size else None,
            A_eq=model.a_eq if model.a_eq.size else None,
            b_eq=model.b_eq if model.b_eq.size else None,
            bounds=np.column_stack([lower, upper]),
            method="highs",
        )
        if not result.success:
            return None
        return result

    root = solve_lp(model.lower.copy(), model.upper.copy())
    if root is None:
        raise SolverError("branch and bound: root LP is infeasible")

    counter = itertools.count()
    best_values: np.ndarray | None = None
    best_objective = np.inf
    heap: list[_Node] = [_Node(float(root.fun), next(counter),
                               model.lower.copy(), model.upper.copy())]
    nodes_processed = 0
    timed_out = False

    while heap:
        if deadline is not None and time.perf_counter() > deadline:
            timed_out = True
            break
        if nodes_processed >= max_nodes:
            timed_out = True
            break
        node = heapq.heappop(heap)
        if node.bound >= best_objective - 1e-9:
            continue  # cannot improve the incumbent
        lp = solve_lp(node.fixed_lower, node.fixed_upper)
        nodes_processed += 1
        if lp is None or lp.fun >= best_objective - 1e-9:
            continue
        fractional = _most_fractional(lp.x, integer_indices)
        if fractional is None:
            # Integral solution: new incumbent.
            best_objective = float(lp.fun)
            best_values = np.asarray(lp.x).copy()
            continue
        index, value = fractional
        for branch_floor in (True, False):
            lower = node.fixed_lower.copy()
            upper = node.fixed_upper.copy()
            if branch_floor:
                upper[index] = np.floor(value)
            else:
                lower[index] = np.ceil(value)
            if lower[index] > upper[index]:
                continue
            heapq.heappush(heap, _Node(float(lp.fun), next(counter),
                                       lower, upper))

    elapsed = time.perf_counter() - start
    if best_values is None:
        if timed_out:
            raise SolverError(
                "branch and bound hit its limit before finding any "
                "integral incumbent")
        raise SolverError("branch and bound found no integral solution")
    return SolveResult(
        values=best_values,
        objective=best_objective + model.objective_constant,
        optimal=not timed_out and not heap,
        timed_out=timed_out,
        elapsed_seconds=elapsed,
    )


def _most_fractional(values: np.ndarray, integer_indices: np.ndarray,
                     ) -> tuple[int, float] | None:
    """The integer variable farthest from integrality, or None if integral."""
    best_index = -1
    best_distance = _INTEGRALITY_TOLERANCE
    for index in integer_indices:
        value = values[index]
        distance = abs(value - round(value))
        if distance > best_distance:
            best_distance = distance
            best_index = int(index)
    if best_index < 0:
        return None
    return best_index, float(values[best_index])
