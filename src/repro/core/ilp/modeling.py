"""A compact 0/1 MILP modeling layer (the Gurobi-API substitute).

Supports binary and bounded continuous variables, linear expressions,
``<=``/``>=``/``==`` constraints, a linear objective, and
:meth:`Model.product` — the standard linearisation of a product of two
binary variables (``y <= x1``, ``y <= x2``, ``y >= x1 + x2 - 1``) that
Section 5.3 of the paper leans on.  Models compile to the matrix form
consumed by the backends in :mod:`repro.core.ilp.highs` and
:mod:`repro.core.ilp.bnb`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError


@dataclass(frozen=True)
class Variable:
    """Handle to a model variable (identified by its column index)."""

    index: int
    name: str
    is_integer: bool
    lower: float
    upper: float


class LinExpr:
    """A linear expression: coefficient map over variables plus a constant."""

    __slots__ = ("coefficients", "constant")

    def __init__(self, coefficients: dict[int, float] | None = None,
                 constant: float = 0.0) -> None:
        self.coefficients = coefficients or {}
        self.constant = constant

    @classmethod
    def of(cls, variable: Variable, coefficient: float = 1.0) -> "LinExpr":
        return cls({variable.index: coefficient})

    def add_term(self, variable: Variable, coefficient: float) -> "LinExpr":
        if coefficient:
            self.coefficients[variable.index] = (
                self.coefficients.get(variable.index, 0.0) + coefficient)
        return self

    def add(self, other: "LinExpr", scale: float = 1.0) -> "LinExpr":
        for index, coefficient in other.coefficients.items():
            self.coefficients[index] = (self.coefficients.get(index, 0.0)
                                        + scale * coefficient)
        self.constant += scale * other.constant
        return self

    def add_constant(self, value: float) -> "LinExpr":
        self.constant += value
        return self

    def value(self, assignment: np.ndarray) -> float:
        return self.constant + sum(
            coefficient * assignment[index]
            for index, coefficient in self.coefficients.items())


@dataclass(frozen=True)
class Constraint:
    """``expr <sense> 0`` with sense in {"<=", ">=", "=="} (the constant is
    folded into the expression)."""

    expr: LinExpr
    sense: str
    name: str = ""


@dataclass
class CompiledModel:
    """Matrix form: minimise ``c @ x`` s.t. ``A_ub x <= b_ub``,
    ``A_eq x == b_eq``, bounds, integrality flags."""

    c: np.ndarray
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integrality: np.ndarray
    objective_constant: float
    variable_names: list[str]


class Model:
    """Incremental MILP builder."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._variables: list[Variable] = []
        self._constraints: list[Constraint] = []
        self._objective = LinExpr()
        self._minimize = True
        self._product_cache: dict[tuple[int, int], Variable] = {}

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    def binary(self, name: str) -> Variable:
        variable = Variable(len(self._variables), name, True, 0.0, 1.0)
        self._variables.append(variable)
        return variable

    def continuous(self, name: str, lower: float = 0.0,
                   upper: float = 1.0) -> Variable:
        if lower > upper:
            raise SolverError(f"variable {name!r} has empty domain")
        variable = Variable(len(self._variables), name, False, lower, upper)
        self._variables.append(variable)
        return variable

    def product(self, x1: Variable, x2: Variable) -> Variable:
        """A variable equal to ``x1 * x2`` for binary inputs (cached).

        Linearised per Section 5.3: ``y <= x1``, ``y <= x2``,
        ``y >= x1 + x2 - 1`` with ``y in [0, 1]`` (continuous suffices —
        the constraints force integrality at binary corners).
        """
        if x1.index == x2.index:
            return x1
        key = (min(x1.index, x2.index), max(x1.index, x2.index))
        cached = self._product_cache.get(key)
        if cached is not None:
            return cached
        y = self.continuous(f"prod[{x1.name},{x2.name}]")
        self.add_le(LinExpr({y.index: 1.0, x1.index: -1.0}))
        self.add_le(LinExpr({y.index: 1.0, x2.index: -1.0}))
        self.add_le(LinExpr({y.index: -1.0, x1.index: 1.0, x2.index: 1.0},
                            constant=-1.0))
        self._product_cache[key] = y
        return y

    # ------------------------------------------------------------------
    # Constraints / objective
    # ------------------------------------------------------------------

    def add_le(self, expr: LinExpr, name: str = "") -> None:
        """Add ``expr <= 0``."""
        self._constraints.append(Constraint(expr, "<=", name))

    def add_ge(self, expr: LinExpr, name: str = "") -> None:
        """Add ``expr >= 0``."""
        self._constraints.append(Constraint(expr, ">=", name))

    def add_eq(self, expr: LinExpr, name: str = "") -> None:
        """Add ``expr == 0``."""
        self._constraints.append(Constraint(expr, "==", name))

    def minimize(self, expr: LinExpr) -> None:
        self._objective = expr
        self._minimize = True

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def compile(self) -> CompiledModel:
        n = len(self._variables)
        c = np.zeros(n)
        for index, coefficient in self._objective.coefficients.items():
            c[index] = coefficient

        ub_rows: list[tuple[dict[int, float], float]] = []
        eq_rows: list[tuple[dict[int, float], float]] = []
        for constraint in self._constraints:
            coefficients = constraint.expr.coefficients
            bound = -constraint.expr.constant
            if constraint.sense == "<=":
                ub_rows.append((coefficients, bound))
            elif constraint.sense == ">=":
                negated = {i: -v for i, v in coefficients.items()}
                ub_rows.append((negated, -bound))
            else:
                eq_rows.append((coefficients, bound))

        a_ub = np.zeros((len(ub_rows), n))
        b_ub = np.zeros(len(ub_rows))
        for row, (coefficients, bound) in enumerate(ub_rows):
            for index, value in coefficients.items():
                a_ub[row, index] = value
            b_ub[row] = bound
        a_eq = np.zeros((len(eq_rows), n))
        b_eq = np.zeros(len(eq_rows))
        for row, (coefficients, bound) in enumerate(eq_rows):
            for index, value in coefficients.items():
                a_eq[row, index] = value
            b_eq[row] = bound

        return CompiledModel(
            c=c,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=a_eq,
            b_eq=b_eq,
            lower=np.array([v.lower for v in self._variables]),
            upper=np.array([v.upper for v in self._variables]),
            integrality=np.array([1 if v.is_integer else 0
                                  for v in self._variables]),
            objective_constant=self._objective.constant,
            variable_names=[v.name for v in self._variables],
        )


@dataclass(frozen=True)
class SolveResult:
    """Backend-independent solve outcome."""

    values: np.ndarray
    objective: float
    optimal: bool
    timed_out: bool
    elapsed_seconds: float

    def value_of(self, variable: Variable) -> float:
        return float(self.values[variable.index])

    def is_one(self, variable: Variable, tolerance: float = 0.5) -> bool:
        return self.value_of(variable) > tolerance
