"""MILP backend on scipy's HiGHS (``scipy.optimize.milp``)."""

from __future__ import annotations

import time

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.core.ilp.modeling import CompiledModel, SolveResult
from repro.errors import SolverError


def solve_with_highs(model: CompiledModel,
                     timeout_seconds: float | None = None,
                     mip_rel_gap: float = 1e-6) -> SolveResult:
    """Solve *model* with HiGHS; honours an optional wall-clock timeout.

    On timeout, HiGHS returns its incumbent when one exists; we surface it
    with ``timed_out=True`` (the paper's ILP "still produces a solution
    which is however not guaranteed to be optimal anymore").  Raises
    :class:`SolverError` when no assignment at all is available.
    """
    constraints = []
    if model.a_ub.size:
        constraints.append(LinearConstraint(
            model.a_ub, -np.inf, model.b_ub))
    if model.a_eq.size:
        constraints.append(LinearConstraint(
            model.a_eq, model.b_eq, model.b_eq))
    options: dict[str, float] = {"mip_rel_gap": mip_rel_gap}
    if timeout_seconds is not None:
        options["time_limit"] = max(1e-3, timeout_seconds)

    start = time.perf_counter()
    result = milp(
        c=model.c,
        constraints=constraints or None,
        bounds=Bounds(model.lower, model.upper),
        integrality=model.integrality,
        options=options,
    )
    elapsed = time.perf_counter() - start

    timed_out = result.status == 1  # iteration/time limit reached
    if result.x is None:
        if timed_out:
            raise SolverError(
                "HiGHS hit the time limit before finding any incumbent")
        raise SolverError(f"HiGHS failed: {result.message}")
    objective = float(result.fun) + model.objective_constant
    return SolveResult(
        values=np.asarray(result.x),
        objective=objective,
        optimal=result.status == 0,
        timed_out=timed_out,
        elapsed_seconds=elapsed,
    )
