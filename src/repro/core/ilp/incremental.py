"""Incremental optimisation (Section 5.4).

Optimisation time is divided into sequences; the *i*-th sequence has
duration ``k * b**i`` (exponentially increasing timeouts, reducing the
relative overhead of solver restarts).  After each sequence the current
best multiplot is yielded so the UI can render early, possibly suboptimal,
visualizations that improve over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.ilp.translate import IlpSolution, IlpSolver, ProcessingGroup
from repro.core.problem import MultiplotSelectionProblem
from repro.errors import SolverError


@dataclass(frozen=True)
class IncrementalStep:
    """One yielded visualization of the incremental schedule."""

    step: int
    timeout_seconds: float
    cumulative_seconds: float
    solution: IlpSolution
    improved: bool


def incremental_solve(problem: MultiplotSelectionProblem,
                      solver: IlpSolver | None = None,
                      initial_timeout: float = 0.0625,
                      growth_factor: float = 2.0,
                      total_budget: float = 4.0,
                      processing_groups: list[ProcessingGroup] | None = None,
                      ) -> Iterator[IncrementalStep]:
    """Yield successively better ILP solutions under growing timeouts.

    Defaults follow the paper's Figure 9 configuration (``k = 62.5 ms``,
    ``b = 2``).  Iteration stops when a step proves optimality or the
    cumulative budget is exhausted.  Steps where the solver found no
    incumbent at all are skipped silently (nothing to show yet).
    """
    if initial_timeout <= 0 or growth_factor <= 1.0:
        raise SolverError(
            "initial_timeout must be positive and growth_factor > 1")
    solver = solver or IlpSolver()
    best_cost = float("inf")
    cumulative = 0.0
    step = 0
    while cumulative < total_budget:
        timeout = min(initial_timeout * growth_factor ** step,
                      total_budget - cumulative)
        try:
            solution = solver.solve(problem,
                                    processing_groups=processing_groups,
                                    timeout_seconds=timeout)
        except SolverError:
            solution = None
        cumulative += timeout
        if solution is not None:
            improved = solution.expected_cost < best_cost - 1e-9
            if improved:
                best_cost = solution.expected_cost
            yield IncrementalStep(
                step=step,
                timeout_seconds=timeout,
                cumulative_seconds=cumulative,
                solution=solution,
                improved=improved,
            )
            if solution.optimal:
                return
        step += 1
