"""MUVE's core contribution: multiplot selection.

Given candidate queries with probabilities, a row budget and a screen
width, pick plots, bar assignments and highlighting that minimise expected
user disambiguation time (Definition 5 of the paper).  Submodules:

* :mod:`repro.core.model` — plots, multiplots, screen geometry.
* :mod:`repro.core.cost_model` — the Section 4 user time model.
* :mod:`repro.core.problem` — problem instances and feasibility checks.
* :mod:`repro.core.ilp` — the integer-programming solver (Section 5).
* :mod:`repro.core.greedy` — the greedy solver (Section 6).
* :mod:`repro.core.planner` — the façade choosing and running a solver.
"""

from repro.core.cost_model import UserCostModel
from repro.core.model import Bar, Multiplot, Plot, ScreenGeometry
from repro.core.planner import PlannerResult, VisualizationPlanner
from repro.core.problem import MultiplotSelectionProblem

__all__ = [
    "Bar",
    "Multiplot",
    "MultiplotSelectionProblem",
    "Plot",
    "PlannerResult",
    "ScreenGeometry",
    "UserCostModel",
    "VisualizationPlanner",
]
