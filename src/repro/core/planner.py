"""The visualization planner façade.

Chooses between the ILP and greedy solvers (or races them under the
interactive budget) and normalises their outputs into one result type —
this is the "Visualization Planner" box of Figure 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.greedy import GreedySolver
from repro.core.ilp import IlpSolver, ProcessingGroup
from repro.core.model import Multiplot
from repro.core.problem import MultiplotSelectionProblem
from repro.errors import PlanningError, SolverError
from repro.observability import current_span, trace_span

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.caching import PlanCache


@dataclass(frozen=True)
class PlannerResult:
    """A planned multiplot plus solver metadata."""

    multiplot: Multiplot
    expected_cost: float
    solver_name: str
    elapsed_seconds: float
    optimal: bool
    timed_out: bool


class VisualizationPlanner:
    """Plans multiplots with a configurable strategy.

    ``strategy`` is one of:

    * ``"greedy"`` — Section 6 greedy only (never times out).
    * ``"ilp"`` — Section 5 ILP only, honouring ``timeout_seconds``.
    * ``"best"`` — run both and keep the lower-cost multiplot (falling
      back to greedy when the ILP fails outright).

    The planner holds no per-request state, so one instance may plan for
    many threads concurrently.  An optional ``plan_cache``
    (:class:`~repro.caching.PlanCache`) memoises results per problem
    identity — repeated candidate distributions (the common case for
    repeated questions) skip both solvers entirely.
    """

    def __init__(self, strategy: str = "best",
                 timeout_seconds: float = 1.0,
                 ilp_backend: str = "highs",
                 greedy_epsilon: float = 0.1,
                 processing_weight: float = 0.0,
                 plan_cache: "PlanCache | None" = None) -> None:
        if strategy not in ("greedy", "ilp", "best"):
            raise PlanningError(f"unknown strategy {strategy!r}")
        self.strategy = strategy
        self.timeout_seconds = timeout_seconds
        self.plan_cache = plan_cache
        self._greedy = GreedySolver(epsilon=greedy_epsilon)
        self._ilp = IlpSolver(backend=ilp_backend,
                              timeout_seconds=timeout_seconds,
                              processing_weight=processing_weight)

    def plan(self, problem: MultiplotSelectionProblem,
             processing_groups: list[ProcessingGroup] | None = None,
             ) -> PlannerResult:
        """Plan a multiplot for *problem* (through the cache when set)."""
        with trace_span("planner.plan") as span:
            span.set_attribute("strategy", self.strategy)
            span.set_attribute("candidates", len(problem.candidates))
            if self.plan_cache is None:
                result = self._plan_uncached(problem, processing_groups)
                span.set_attribute("cache", "off")
            else:
                key = (self.strategy, self.timeout_seconds,
                       self._ilp.backend, self._greedy.epsilon,
                       self.plan_cache.problem_key(problem,
                                                   processing_groups))
                computed = False

                def compute() -> PlannerResult:
                    nonlocal computed
                    computed = True
                    return self._plan_uncached(problem, processing_groups)

                result = self.plan_cache.get_or_plan(key, compute)
                span.set_attribute("cache",
                                   "miss" if computed else "hit")
            span.set_attribute("solver", result.solver_name)
            span.set_attribute("expected_cost",
                               round(result.expected_cost, 3))
            return result

    def _plan_uncached(self, problem: MultiplotSelectionProblem,
                       processing_groups: list[ProcessingGroup] | None,
                       ) -> PlannerResult:
        if self.strategy == "greedy":
            return self._plan_greedy(problem)
        if self.strategy == "ilp":
            return self._plan_ilp(problem, processing_groups)
        greedy_result = self._plan_greedy(problem)
        try:
            ilp_result = self._plan_ilp(problem, processing_groups)
        except SolverError:
            current_span().set_attribute("decision",
                                         "greedy (ilp failed)")
            return greedy_result
        if ilp_result.expected_cost <= greedy_result.expected_cost:
            # The "best" strategy upgrade: the ILP beat (or matched) the
            # greedy incumbent within its budget.
            current_span().set_attribute("decision", "ilp upgrade")
            return ilp_result
        current_span().set_attribute("decision", "greedy kept")
        return greedy_result

    def _plan_greedy(self, problem: MultiplotSelectionProblem,
                     ) -> PlannerResult:
        with trace_span("planner.greedy") as span:
            solution = self._greedy.solve(problem)
            span.set_attribute("expected_cost",
                               round(solution.expected_cost, 3))
            return PlannerResult(
                multiplot=solution.multiplot,
                expected_cost=solution.expected_cost,
                solver_name="greedy",
                elapsed_seconds=solution.elapsed_seconds,
                optimal=False,
                timed_out=False,
            )

    def _plan_ilp(self, problem: MultiplotSelectionProblem,
                  processing_groups: list[ProcessingGroup] | None,
                  ) -> PlannerResult:
        with trace_span("planner.ilp", backend=self._ilp.backend) as span:
            start = time.perf_counter()
            solution = self._ilp.solve(problem,
                                       processing_groups=processing_groups)
            span.set_attribute("expected_cost",
                               round(solution.expected_cost, 3))
            span.set_attribute("optimal", solution.optimal)
            span.set_attribute("timed_out", solution.timed_out)
            return PlannerResult(
                multiplot=solution.multiplot,
                expected_cost=solution.expected_cost,
                solver_name=f"ilp-{self._ilp.backend}",
                elapsed_seconds=time.perf_counter() - start,
                optimal=solution.optimal,
                timed_out=solution.timed_out,
            )
