"""The visualization planner façade.

Chooses between the ILP and greedy solvers (or races them under the
interactive budget) and normalises their outputs into one result type —
this is the "Visualization Planner" box of Figure 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.core.greedy import GreedySolver
from repro.core.ilp import IlpSolver, ProcessingGroup
from repro.core.model import Multiplot
from repro.core.problem import MultiplotSelectionProblem
from repro.errors import DeadlineExceeded, PlanningError, SolverError
from repro.observability import current_span, trace_span
from repro.resilience import (
    current_deadline,
    deadline_grace,
    degradation_count,
    exception_reason,
    record_degradation,
)
from repro.testing.faults import FaultError, active_fault_plan, fault_point

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.caching import PlanCache


@dataclass(frozen=True)
class PlannerResult:
    """A planned multiplot plus solver metadata.

    ``greedy_cost`` / ``ilp_cost`` carry the expected cost of each
    solver when it ran for this plan (the "best" strategy runs both), so
    quality telemetry can report the live greedy-vs-ILP optimality gap;
    ``None`` means that solver was not consulted.
    """

    multiplot: Multiplot
    expected_cost: float
    solver_name: str
    elapsed_seconds: float
    optimal: bool
    timed_out: bool
    greedy_cost: float | None = None
    ilp_cost: float | None = None


class VisualizationPlanner:
    """Plans multiplots with a configurable strategy.

    ``strategy`` is one of:

    * ``"greedy"`` — Section 6 greedy only (never times out).
    * ``"ilp"`` — Section 5 ILP only, honouring ``timeout_seconds``.
    * ``"best"`` — run both and keep the lower-cost multiplot (falling
      back to greedy when the ILP fails outright).

    The planner holds no per-request state, so one instance may plan for
    many threads concurrently.  An optional ``plan_cache``
    (:class:`~repro.caching.PlanCache`) memoises results per problem
    identity — repeated candidate distributions (the common case for
    repeated questions) skip both solvers entirely.
    """

    def __init__(self, strategy: str = "best",
                 timeout_seconds: float = 1.0,
                 ilp_backend: str = "highs",
                 greedy_epsilon: float = 0.1,
                 processing_weight: float = 0.0,
                 plan_cache: "PlanCache | None" = None) -> None:
        if strategy not in ("greedy", "ilp", "best"):
            raise PlanningError(f"unknown strategy {strategy!r}")
        self.strategy = strategy
        self.timeout_seconds = timeout_seconds
        self.plan_cache = plan_cache
        self._greedy = GreedySolver(epsilon=greedy_epsilon)
        self._ilp = IlpSolver(backend=ilp_backend,
                              timeout_seconds=timeout_seconds,
                              processing_weight=processing_weight)

    def plan(self, problem: MultiplotSelectionProblem,
             processing_groups: list[ProcessingGroup] | None = None,
             ) -> PlannerResult:
        """Plan a multiplot for *problem* (through the cache when set)."""
        with trace_span("planner.plan") as span:
            span.set_attribute("strategy", self.strategy)
            span.set_attribute("candidates", len(problem.candidates))
            # A deadline or an active fault plan can degrade this plan,
            # and degraded plans must never be cached (a later
            # pressure-free request would be served the degraded
            # multiplot).  Under an active fault plan the cache is
            # bypassed outright so injected faults fire deterministically
            # regardless of cache warmth.  Under a deadline alone, hits
            # are served (only proven-undegraded plans are ever stored,
            # and a cached optimal plan beats anything pressure would
            # produce) and the miss path stores only when no degradation
            # rung fired during planning.
            guarded = current_deadline() is not None
            if self.plan_cache is None or active_fault_plan() is not None:
                result = self._plan_uncached(problem, processing_groups)
                span.set_attribute(
                    "cache", "off" if self.plan_cache is None
                    else "bypass")
            else:
                key = (self.strategy, self.timeout_seconds,
                       self._ilp.backend, self._greedy.epsilon,
                       self.plan_cache.problem_key(problem,
                                                   processing_groups))
                if guarded:
                    result = self.plan_cache.get(key)
                    if result is not None:
                        span.set_attribute("cache", "hit")
                    else:
                        before = degradation_count()
                        result = self._plan_uncached(problem,
                                                     processing_groups)
                        clean = (before is not None
                                 and degradation_count() == before)
                        if clean:
                            self.plan_cache.put(key, result)
                        span.set_attribute(
                            "cache",
                            "miss" if clean else "miss-uncacheable")
                else:
                    computed = False

                    def compute() -> PlannerResult:
                        nonlocal computed
                        computed = True
                        return self._plan_uncached(problem,
                                                   processing_groups)

                    result = self.plan_cache.get_or_plan(key, compute)
                    span.set_attribute("cache",
                                       "miss" if computed else "hit")
            span.set_attribute("solver", result.solver_name)
            span.set_attribute("expected_cost",
                               round(result.expected_cost, 3))
            return result

    def _plan_uncached(self, problem: MultiplotSelectionProblem,
                       processing_groups: list[ProcessingGroup] | None,
                       ) -> PlannerResult:
        """Plan with the configured strategy, degrading to greedy-only
        on deadline exhaustion, solver failure, or an injected fault
        (the ILP→lazy-greedy rung of the resilience ladder).  The
        fallback runs in deadline grace: greedy is the cheapest plan we
        can produce, so an already-expired budget still gets an answer
        instead of an error."""
        try:
            fault_point("planner.solve")
            deadline = current_deadline()
            if deadline is not None:
                deadline.check("planner.solve")
            return self._plan_primary(problem, processing_groups,
                                      deadline)
        except (DeadlineExceeded, SolverError, FaultError) as exc:
            record_degradation("planner", "ilp_to_greedy",
                               exception_reason(exc),
                               detail=f"strategy={self.strategy}")
            current_span().set_attribute("decision", "greedy (degraded)")
            with deadline_grace():
                return self._plan_greedy(problem)

    def _plan_primary(self, problem: MultiplotSelectionProblem,
                      processing_groups: list[ProcessingGroup] | None,
                      deadline) -> PlannerResult:
        if self.strategy == "greedy":
            return self._plan_greedy(problem)
        if self.strategy == "ilp":
            return self._plan_ilp(problem, processing_groups)
        greedy_result = self._plan_greedy(problem)
        if deadline is not None and \
                deadline.remaining_ms() < self.timeout_seconds * 1000.0:
            # Not enough budget left for the ILP's own timeout: keep the
            # greedy incumbent rather than start work we cannot finish.
            record_degradation(
                "planner", "ilp_to_greedy", "deadline_pressure",
                detail=f"remaining {deadline.remaining_ms():.0f} ms < "
                       f"ilp budget {self.timeout_seconds * 1000:.0f} ms")
            current_span().set_attribute("decision",
                                         "greedy (deadline pressure)")
            return greedy_result
        try:
            ilp_result = self._plan_ilp(problem, processing_groups)
        except SolverError as exc:
            record_degradation("planner", "ilp_to_greedy",
                               exception_reason(exc))
            current_span().set_attribute("decision",
                                         "greedy (ilp failed)")
            return greedy_result
        # Both solvers ran: whichever wins, the result carries both
        # costs so telemetry can report the live optimality gap.
        both = {"greedy_cost": greedy_result.expected_cost,
                "ilp_cost": ilp_result.expected_cost}
        if ilp_result.expected_cost <= greedy_result.expected_cost:
            # The "best" strategy upgrade: the ILP beat (or matched) the
            # greedy incumbent within its budget.
            current_span().set_attribute("decision", "ilp upgrade")
            return replace(ilp_result, **both)
        current_span().set_attribute("decision", "greedy kept")
        return replace(greedy_result, **both)

    def _plan_greedy(self, problem: MultiplotSelectionProblem,
                     ) -> PlannerResult:
        with trace_span("planner.greedy") as span:
            solution = self._greedy.solve(problem)
            span.set_attribute("expected_cost",
                               round(solution.expected_cost, 3))
            return PlannerResult(
                multiplot=solution.multiplot,
                expected_cost=solution.expected_cost,
                solver_name="greedy",
                elapsed_seconds=solution.elapsed_seconds,
                optimal=False,
                timed_out=False,
                greedy_cost=solution.expected_cost,
            )

    def _plan_ilp(self, problem: MultiplotSelectionProblem,
                  processing_groups: list[ProcessingGroup] | None,
                  ) -> PlannerResult:
        with trace_span("planner.ilp", backend=self._ilp.backend) as span:
            start = time.perf_counter()
            solution = self._ilp.solve(problem,
                                       processing_groups=processing_groups)
            span.set_attribute("expected_cost",
                               round(solution.expected_cost, 3))
            span.set_attribute("optimal", solution.optimal)
            span.set_attribute("timed_out", solution.timed_out)
            return PlannerResult(
                multiplot=solution.multiplot,
                expected_cost=solution.expected_cost,
                solver_name=f"ilp-{self._ilp.backend}",
                elapsed_seconds=time.perf_counter() - start,
                optimal=solution.optimal,
                timed_out=solution.timed_out,
                ilp_cost=solution.expected_cost,
            )
