"""The central registry of ``MUVE_*`` environment flags.

Every environment variable the project reads is declared here — name,
type, default, and one-line description — and read back through the
accessors below.  The registry is the single source of truth for three
consumers:

* **Runtime**: :func:`env_raw` / :func:`env_switch` / :func:`env_int` /
  :func:`env_float` / :func:`env_str` refuse to read a ``MUVE_*`` key
  that is not declared, so a typo'd flag name fails loudly instead of
  silently falling back to a default.
* **Static analysis**: ``tools/muvelint`` parses the literal
  :func:`_flag` declarations in this file and rejects (a) any direct
  ``os.environ`` read of a ``MUVE_*`` key outside this module and
  (b) any accessor call naming an undeclared flag.
* **Documentation**: ``scripts/gen_flags_doc.py`` renders the registry
  as the flag table in README.md and fails ``make lint`` if the two
  have drifted apart.

Declarations must stay *literal* calls (``_flag("<NAME>", ...)``) — the
linter and the doc generator read them from the AST without importing
anything, so computed names would defeat both.

This module deliberately imports nothing from the rest of the package
(only :mod:`repro.errors`), so any module — including the lowest layers
— can use it without creating an import cycle.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ReproError

__all__ = [
    "FLAGS",
    "Flag",
    "env_float",
    "env_int",
    "env_raw",
    "env_str",
    "env_switch",
]

#: Values that turn an on-by-default switch off (and, inverted, that an
#: off-by-default switch requires to turn on).  Shared by every switch
#: flag so ``=0`` and ``=off`` always mean the same thing.
_OFF_VALUES = ("off", "0", "false", "no")


@dataclass(frozen=True)
class Flag:
    """One declared environment flag."""

    name: str         #: the environment variable, always ``MUVE_*``
    kind: str         #: "switch" | "int" | "float" | "str" | "spec"
    default: str      #: documented default ("" means unset)
    description: str  #: one line for the README table
    section: str      #: README table grouping


FLAGS: dict[str, Flag] = {}


def _flag(name: str, kind: str, default: str, description: str,
          section: str) -> None:
    if name in FLAGS:  # pragma: no cover - declaration-time guard
        raise ReproError(f"duplicate flag declaration: {name}")
    FLAGS[name] = Flag(name=name, kind=kind, default=default,
                       description=description, section=section)


# ---------------------------------------------------------------------------
# Serving & execution
# ---------------------------------------------------------------------------

_flag("MUVE_BATCH_EXEC", "switch", "on",
      "One-pass batch execution of whole candidate plans "
      "(`--no-batch-exec`); off restores the per-group loop.",
      "Execution")
_flag("MUVE_PARALLEL", "switch", "on",
      "Morsel/group scattering onto the shared worker pool "
      "(`--no-parallel`); off keeps the bit-identical serial path.",
      "Execution")
_flag("MUVE_WORKERS", "int", "min(8, cpu_count)",
      "Worker threads of the shared execution pool (`--workers-exec`).",
      "Execution")
_flag("MUVE_INDEXES", "switch", "on",
      "Secondary-index access paths (`--no-indexes`); off answers every "
      "predicate with full scans (identical results).",
      "Execution")
_flag("MUVE_PHONETIC_PRUNING", "switch", "on",
      "Pruned best-first phonetic top-k (`--no-phonetic-pruning`); off "
      "falls back to the exhaustive scan oracle.",
      "Execution")

# ---------------------------------------------------------------------------
# Resilience & fault injection
# ---------------------------------------------------------------------------

_flag("MUVE_DEADLINE_MS", "float", "",
      "Process-wide per-request latency budget in ms; stages degrade "
      "instead of blowing it (unset/non-positive = no deadline).",
      "Resilience")
_flag("MUVE_FAULTS", "spec", "",
      "Deterministic fault plan, `site:kind[=v][@p][#n]` entries "
      "separated by `;` (see DESIGN.md, Resilience).",
      "Resilience")
_flag("MUVE_FAULT_SEED", "int", "0",
      "Seed of the per-(site, invocation) fault-injection RNG.",
      "Resilience")

# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------

_flag("MUVE_TRACING", "switch", "on",
      "The span tracer; `off` makes `trace_span` a no-op (the overhead "
      "gate pins the cost of `on` below 5%).",
      "Observability")
_flag("MUVE_TRACE_LOG_SIZE", "int", "256",
      "Capacity of the recent-traces ring buffer behind `/api/traces`.",
      "Observability")
_flag("MUVE_SLO_LATENCY_MS", "float", "500",
      "Request-latency objective threshold scored by the SLO engine.",
      "Observability")
_flag("MUVE_SLO_COVERAGE", "float", "0.9",
      "Truth-coverage objective floor scored by the SLO engine.",
      "Observability")

# ---------------------------------------------------------------------------
# Correctness tooling
# ---------------------------------------------------------------------------

_flag("MUVE_LOCKDEP", "switch", "off",
      "Runtime lock-order checking (`repro.testing.lockdep`): records "
      "per-thread lock acquisition edges, fails tests on lock-order "
      "cycles or locks held across a pool wait.",
      "Tooling")

# ---------------------------------------------------------------------------
# Benchmarks & performance gates (scripts/, `make profile`)
# ---------------------------------------------------------------------------

_flag("MUVE_OVERHEAD_THRESHOLD", "float", "0.05",
      "Allowed fractional overhead of tracing/resilience "
      "(`scripts/check_overhead.py`).",
      "Gates")
_flag("MUVE_PROFILE_REQUESTS", "int", "50",
      "Requests per round in the overhead gate and the sentinel "
      "workload.",
      "Gates")
_flag("MUVE_PROFILE_ROWS", "int", "5000",
      "Table rows of the overhead-gate/sentinel workload.",
      "Gates")
_flag("MUVE_BATCH_TOLERANCE", "float", "0.02",
      "Allowed batch-vs-per-group slowdown "
      "(`scripts/check_batch_speedup.py`).",
      "Gates")
_flag("MUVE_BATCH_SCAN_FACTOR", "float", "1.5",
      "Required scans-per-request reduction of the batch executor.",
      "Gates")
_flag("MUVE_BATCH_REQUESTS", "int", "30",
      "Requests per arm of the batch-speedup gate.",
      "Gates")
_flag("MUVE_BATCH_ROWS", "int", "20000",
      "Table rows of the batch-speedup gate workload.",
      "Gates")
_flag("MUVE_BATCH_CANDIDATES", "int", "50",
      "Candidate count of the batch-speedup gate workload.",
      "Gates")
_flag("MUVE_PHONETIC_SPEEDUP_FACTOR", "float", "5",
      "Required pruned-vs-exhaustive speedup at 100k terms "
      "(`scripts/check_phonetics_speedup.py`).",
      "Gates")
_flag("MUVE_PHONETIC_P50_MS", "float", "10",
      "p50 latency budget of pruned phonetic retrieval at 100k terms.",
      "Gates")
_flag("MUVE_PHONETIC_TERMS", "int", "100000",
      "Vocabulary size of the phonetic-speedup gate.",
      "Gates")
_flag("MUVE_PHONETIC_PROBES", "int", "20",
      "Probe count of the phonetic-speedup gate.",
      "Gates")
_flag("MUVE_INDEX_SPEEDUP_FACTOR", "float", "5",
      "Required indexed-vs-scan p50 speedup "
      "(`scripts/check_index_speedup.py`).",
      "Gates")
_flag("MUVE_INDEX_ROWS", "int", "1000000",
      "Table rows of the index-speedup gate workload.",
      "Gates")
_flag("MUVE_INDEX_REQUESTS", "int", "8",
      "Requests per arm of the index-speedup gate.",
      "Gates")
_flag("MUVE_INDEX_CANDIDATES", "int", "50",
      "Candidate count of the index-speedup gate workload.",
      "Gates")
_flag("MUVE_PARALLEL_SPEEDUP_FACTOR", "float", "2",
      "Required parallel-vs-serial p50 speedup "
      "(`scripts/check_parallel_speedup.py`).",
      "Gates")
_flag("MUVE_PARALLEL_MIN_CPUS", "int", "4",
      "Minimum host cores before the parallel speedup gate is "
      "enforced (below it only bit-identity is checked).",
      "Gates")
_flag("MUVE_PARALLEL_GATE_WORKERS", "int", "4",
      "Worker count of the parallel-speedup gate's parallel arm.",
      "Gates")
_flag("MUVE_PARALLEL_ROWS", "int", "1000000",
      "Table rows of the parallel-speedup gate workload.",
      "Gates")
_flag("MUVE_PARALLEL_REQUESTS", "int", "6",
      "Requests per arm of the parallel benchmarks and gate.",
      "Gates")
_flag("MUVE_PARALLEL_CANDIDATES", "int", "50",
      "Candidate count of the parallel benchmarks and gate.",
      "Gates")
_flag("MUVE_PARALLEL_ROUNDS", "int", "3",
      "Rounds (best-of) of `scripts/bench_parallel.py`.",
      "Gates")
_flag("MUVE_PARALLEL_ROW_SWEEP", "str", "200000,1000000",
      "Row counts swept by `scripts/bench_parallel.py`.",
      "Gates")
_flag("MUVE_PARALLEL_WORKER_SWEEP", "str", "1,2,4,8",
      "Worker counts swept by `scripts/bench_parallel.py`.",
      "Gates")
_flag("MUVE_SHED_CLIENTS", "int", "16",
      "Concurrent clients of the overload-shedding gate "
      "(`scripts/check_shedding.py`).",
      "Gates")
_flag("MUVE_SHED_INFLIGHT", "int", "4",
      "`max_inflight` of the overload-shedding gate's server.",
      "Gates")
_flag("MUVE_SHED_DEADLINE_MS", "float", "250",
      "Per-request deadline of the overload-shedding gate.",
      "Gates")
_flag("MUVE_SENTINEL_LATENCY_REL", "float", "0.5",
      "Relative tolerance of the sentinel's latency bands "
      "(`scripts/obs_report.py --check`).",
      "Gates")
_flag("MUVE_SENTINEL_ROUNDS", "int", "3",
      "Rounds (best-of) of the sentinel workload.",
      "Gates")
_flag("MUVE_BENCH_REQUESTS", "int", "30",
      "Requests per configuration in `scripts/bench_serving.py`.",
      "Benchmarks")
_flag("MUVE_BENCH_ROWS", "int", "20000",
      "Table rows of the serving benchmark's base workload.",
      "Benchmarks")
_flag("MUVE_BENCH_CANDIDATES", "int", "50",
      "Candidate count of the serving benchmark workload.",
      "Benchmarks")
_flag("MUVE_BENCH_ROUNDS", "int", "varies",
      "Rounds (best-of) of the serving/phonetic benchmarks "
      "(serving 5, phonetics 3).",
      "Benchmarks")
_flag("MUVE_BENCH_VOCAB", "int", "50000",
      "Vocabulary size of the serving benchmark's candidate-generation "
      "section.",
      "Benchmarks")
_flag("MUVE_BENCH_ROW_SWEEP", "str", "20000,200000,1000000",
      "Row counts of the serving benchmark's scaling sweep (`--rows`).",
      "Benchmarks")
_flag("MUVE_BENCH_SCALING_REQUESTS", "int", "8",
      "Requests per row-scaling configuration.",
      "Benchmarks")
_flag("MUVE_BENCH_PROBES", "int", "20",
      "Probes per vocabulary in `scripts/bench_phonetics.py`.",
      "Benchmarks")
_flag("MUVE_BENCH_EXHAUSTIVE_PROBES", "int", "5",
      "Probes timed against the exhaustive-scan oracle arm.",
      "Benchmarks")
_flag("MUVE_BENCH_FULL", "switch", "off",
      "Include the 1M-term vocabulary in the phonetic benchmark "
      "(`--full`).",
      "Benchmarks")
_flag("MUVE_BENCH_OUTPUT", "str", "BENCH_*.json",
      "Output path override of the benchmark report writers.",
      "Benchmarks")


# ---------------------------------------------------------------------------
# Accessors
# ---------------------------------------------------------------------------


def _require(name: str) -> Flag:
    flag = FLAGS.get(name)
    if flag is None:
        raise ReproError(
            f"undeclared environment flag {name!r}: declare it in "
            f"repro/flags.py (the MUVE_* registry) before reading it")
    return flag


def env_raw(name: str, fallback: str | None = None) -> str | None:
    """The raw environment value of declared flag *name*.

    Mirrors ``os.environ.get``: returns *fallback* (default ``None``)
    when the variable is unset.  Call sites that need bespoke parsing
    or error wording build on this primitive; everything else should
    prefer the typed accessors below.
    """
    _require(name)
    return os.environ.get(name, fallback)


def env_str(name: str, default: str = "") -> str:
    """The string value of declared flag *name* (*default* when unset)."""
    _require(name)
    return os.environ.get(name, default)


def env_switch(name: str, default: str | None = None) -> bool:
    """The on/off value of a declared switch flag.

    Uses the project-wide switch convention: any of ``off``, ``0``,
    ``false``, ``no`` (case-insensitive) disables; anything else —
    including the empty string — enables.  *default* overrides the
    registry default (used by switches that default off, whose registry
    default is ``"off"``).
    """
    flag = _require(name)
    raw = os.environ.get(name, default if default is not None
                         else flag.default)
    return raw.strip().lower() not in _OFF_VALUES


def env_int(name: str, default: int) -> int:
    """The integer value of declared flag *name* (*default* when unset
    or empty).  A non-integer setting raises :class:`ReproError` — a
    silently ignored misconfiguration would leave an operator convinced
    the flag took effect.
    """
    _require(name)
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ReproError(
            f"{name} must be an integer, got {raw!r}") from None


def env_float(name: str, default: float) -> float:
    """The float value of declared flag *name* (*default* when unset or
    empty); non-numeric settings raise :class:`ReproError`."""
    _require(name)
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ReproError(
            f"{name} must be a number, got {raw!r}") from None
