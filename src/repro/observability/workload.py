"""Workload analytics: sliding-window top-k over queries and probes.

Answers "what is this process actually being asked?" without storing the
stream: a **space-saving sketch** (Metwally, Agrawal & El Abbadi,
ICDT'05) keeps a fixed number of counters and guarantees that any key
whose true frequency exceeds ``N / capacity`` is present, with a
per-key overestimate bounded by the smallest tracked count (reported as
``error``).  Staleness is handled by **bucketed rotation**: the window
is cut into fixed time slices, each with its own sketch; reads merge
the live slices, expired slices are dropped whole.  Memory is
``O(capacity x buckets)`` regardless of traffic.

Two streams are tracked process-wide (:func:`get_workload_analytics`):

* **query templates** — the structural shape of each request's seed
  query (aggregate + predicate columns, constants stripped), recorded
  by the MUVE pipeline; the top entries are the workload's hot shapes,
  the thing a DBA would index or a cache would pin for.
* **vocabulary probes** — the terms sent to the phonetic index by
  candidate generation; the top entries are what voice traffic actually
  sounds like, and a skew here is what makes the probe cache pay.

``GET /api/workload`` serves :meth:`WorkloadAnalytics.report`; the demo
dashboard renders it as plain HTML.  Stdlib-only, thread-safe, O(
capacity) per observation (capacity defaults to 64).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

__all__ = [
    "SlidingTopK",
    "SpaceSavingSketch",
    "WorkloadAnalytics",
    "get_workload_analytics",
    "template_signature",
]


class SpaceSavingSketch:
    """Fixed-capacity heavy-hitter counters (not thread-safe on its own;
    :class:`SlidingTopK` provides the locking)."""

    __slots__ = ("_capacity", "_counts")

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        #: key -> [count, overestimate error]
        self._counts: dict[str, list[int]] = {}

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._counts)

    def offer(self, key: str, weight: int = 1) -> None:
        """Count one occurrence of *key* (evicting the current minimum
        when full — the evicted count is inherited, which is what bounds
        the overestimate)."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        entry = self._counts.get(key)
        if entry is not None:
            entry[0] += weight
            return
        if len(self._counts) < self._capacity:
            self._counts[key] = [weight, 0]
            return
        victim = min(self._counts, key=lambda k: self._counts[k][0])
        floor = self._counts.pop(victim)[0]
        self._counts[key] = [floor + weight, floor]

    def items(self) -> list[tuple[str, int, int]]:
        """(key, count, error) tuples, unordered."""
        return [(key, count, error)
                for key, (count, error) in self._counts.items()]

    def merge_into(self, accumulator: dict[str, list[int]]) -> None:
        """Add this sketch's counters into *accumulator* (for window
        merges; errors add because each slice may overestimate)."""
        for key, (count, error) in self._counts.items():
            entry = accumulator.get(key)
            if entry is None:
                accumulator[key] = [count, error]
            else:
                entry[0] += count
                entry[1] += error


class SlidingTopK:
    """A sliding window of space-saving sketches, one per time slice.

    ``window_seconds`` is covered by ``buckets`` slices; a slice older
    than the window is dropped on the next observe/read.  The clock is
    injectable for tests.
    """

    def __init__(self, capacity: int = 64,
                 window_seconds: float = 3600.0,
                 buckets: int = 6,
                 clock: Callable[[], float] = time.time) -> None:
        if window_seconds <= 0:
            raise ValueError(
                f"window must be positive, got {window_seconds}")
        if buckets <= 0:
            raise ValueError(f"buckets must be positive, got {buckets}")
        self.capacity = capacity
        self.window_seconds = float(window_seconds)
        self._slice_seconds = self.window_seconds / buckets
        self._clock = clock
        #: (slice index, sketch), newest last.
        self._slices: deque[tuple[int, SpaceSavingSketch]] = deque()
        self._total = 0
        self._lock = threading.Lock()

    def _current_slice(self, now: float) -> SpaceSavingSketch:
        index = int(now / self._slice_seconds)
        if not self._slices or self._slices[-1][0] != index:
            self._slices.append((index, SpaceSavingSketch(self.capacity)))
        oldest_live = index - int(self.window_seconds
                                  / self._slice_seconds) + 1
        while self._slices and self._slices[0][0] < oldest_live:
            self._slices.popleft()
        return self._slices[-1][1]

    def observe(self, key: str) -> None:
        now = self._clock()
        with self._lock:
            self._current_slice(now).offer(key)
            self._total += 1

    @property
    def total_observed(self) -> int:
        """Lifetime observation count (not windowed; cheap sanity
        signal for "is anything flowing at all")."""
        with self._lock:
            return self._total

    def top(self, n: int = 20) -> list[dict[str, object]]:
        """The up-to-*n* heaviest keys of the live window, heaviest
        first; ``count`` may overestimate by at most ``error``."""
        now = self._clock()
        merged: dict[str, list[int]] = {}
        with self._lock:
            self._current_slice(now)  # expire stale slices
            for _, sketch in self._slices:
                sketch.merge_into(merged)
        ranked = sorted(merged.items(),
                        key=lambda item: (-item[1][0], item[0]))
        return [{"key": key, "count": count, "error": error}
                for key, (count, error) in ranked[:max(n, 0)]]


class WorkloadAnalytics:
    """The two serving-path streams behind ``GET /api/workload``."""

    def __init__(self, capacity: int = 64,
                 window_seconds: float = 3600.0,
                 clock: Callable[[], float] = time.time) -> None:
        self.templates = SlidingTopK(capacity, window_seconds,
                                     clock=clock)
        self.probes = SlidingTopK(capacity, window_seconds, clock=clock)

    def record_template(self, signature: str) -> None:
        self.templates.observe(signature)

    def record_probe(self, term: str) -> None:
        self.probes.observe(term)

    def report(self, n: int = 20) -> dict[str, object]:
        return {
            "window_seconds": self.templates.window_seconds,
            "templates": {
                "total_observed": self.templates.total_observed,
                "top": self.templates.top(n),
            },
            "probes": {
                "total_observed": self.probes.total_observed,
                "top": self.probes.top(n),
            },
        }

    def reset(self) -> None:
        """Fresh sketches (test isolation / baseline regeneration)."""
        self.templates = SlidingTopK(self.templates.capacity,
                                     self.templates.window_seconds,
                                     clock=self.templates._clock)
        self.probes = SlidingTopK(self.probes.capacity,
                                  self.probes.window_seconds,
                                  clock=self.probes._clock)


def template_signature(query) -> str:
    """The constants-stripped shape of an
    :class:`~repro.sqldb.query.AggregateQuery` — what
    :meth:`WorkloadAnalytics.record_template` keys on.

    ``avg(resolution_hours) WHERE borough=? AND complaint_type=?``:
    distinct questions instantiating the same shape collapse, so the
    top-k reads as "hot query shapes", not "hot literal strings".
    """
    aggregate = query.aggregate
    column = aggregate.column if aggregate.column is not None else "*"
    parts = [f"{aggregate.func.value}({column})"]
    if query.predicates:
        columns = sorted(p.column for p in query.predicates)
        parts.append("WHERE " + " AND ".join(f"{c}=?" for c in columns))
    return " ".join(parts)


_GLOBAL_ANALYTICS = WorkloadAnalytics()


def get_workload_analytics() -> WorkloadAnalytics:
    """The process-wide analytics (what ``GET /api/workload`` serves)."""
    return _GLOBAL_ANALYTICS
