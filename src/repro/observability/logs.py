"""Structured (JSON-lines) event logging.

The demo server's access log goes through here instead of
``BaseHTTPRequestHandler.log_message``: one JSON object per line, with a
stable schema that scripts can filter (``jq 'select(.status >= 500)'``)
— off by default, enabled per server (``MuveDemoServer(access_log=True)``
or ``muve.cli --serve --access-log``).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, TextIO

__all__ = ["StructuredLogger"]


class StructuredLogger:
    """Thread-safe JSON-lines logger.

    Each :meth:`log` call writes one line: a JSON object carrying the
    event name, a wall-clock timestamp, and the caller's fields.  When
    ``enabled`` is False the call returns immediately without touching
    the stream, so an attached-but-disabled logger costs one attribute
    check per event.
    """

    def __init__(self, stream: TextIO | None = None,
                 enabled: bool = True) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()
        self.enabled = enabled

    def log(self, event: str, **fields: Any) -> None:
        if not self.enabled:
            return
        record: dict[str, Any] = {"ts": round(time.time(), 6),
                                  "event": event}
        record.update(fields)
        line = json.dumps(record, default=str)
        with self._lock:
            self._stream.write(line + "\n")
            flush = getattr(self._stream, "flush", None)
            if flush is not None:
                flush()
