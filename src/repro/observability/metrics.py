"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

The registry is the aggregation side of the observability layer (the
tracer is the per-request side): cheap, thread-safe instruments that the
serving path updates on every request and that ``/api/metrics`` (or
``muve.cli --profile``) snapshots on demand.

Design constraints, in order:

* **Zero dependencies** — stdlib only, like the rest of the repo.
* **Cheap on the hot path** — recording a value is one lock acquisition
  and a couple of integer updates; nothing allocates per observation.
* **Bounded memory** — histograms keep fixed bucket counts (plus sum /
  min / max), never raw samples, so a million-request load test costs the
  same memory as ten requests.  Percentiles (p50/p95/p99) are estimated
  by linear interpolation inside the owning bucket and clamped to the
  observed min/max, which makes single-value and narrow distributions
  exact; an empty histogram has no quantiles (``percentile`` returns
  ``None``).

Histograms optionally carry **exemplars**: ``observe(value,
exemplar=trace_id)`` keeps, per bucket, the slowest recent observation's
reference, so a p99 bucket in ``/api/metrics`` links straight to the
``/api/traces`` entry that produced it (see
:func:`repro.observability.tracing.current_trace_id`).

Instruments are identified by ``(name, labels)``; labels are plain
keyword arguments (``registry.counter("errors", type="ValueError")``),
kept to low-cardinality values by convention.  A process-wide default
registry is available via :func:`get_registry`; tests construct private
:class:`MetricsRegistry` instances instead.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Iterator

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
]

#: Log-spaced latency buckets in milliseconds: sub-millisecond SQL
#: statements up to 10-second outliers all land in a resolving bucket.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_key(name: str, labels: _LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count (requests served, errors seen)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value: either set directly or pulled from a
    callback at read time (how cache counters are exposed)."""

    __slots__ = ("_callback", "_lock", "_value")

    def __init__(self,
                 callback: Callable[[], float] | None = None) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._callback = callback

    def set(self, value: float) -> None:
        with self._lock:
            self._callback = None
            self._value = float(value)

    def set_callback(self, callback: Callable[[], float]) -> None:
        with self._lock:
            self._callback = callback

    @property
    def value(self) -> float:
        with self._lock:
            callback = self._callback
            if callback is None:
                return self._value
        return float(callback())


#: An exemplar older than this many same-bucket observations is replaced
#: even by a faster value — "slowest recent", not "slowest ever", so a
#: one-off cold-start outlier does not pin the link forever.
EXEMPLAR_STALENESS = 1024


class Histogram:
    """Fixed-bucket distribution with estimated percentiles.

    ``bounds`` are inclusive upper bucket edges; one implicit overflow
    bucket catches everything larger.  Only counts, the sum, the
    observed min/max, and (when the caller supplies them) one exemplar
    per bucket are stored.
    """

    __slots__ = ("_bounds", "_counts", "_count", "_sum", "_min", "_max",
                 "_exemplars", "_lock")

    def __init__(self, bounds: tuple[float, ...] | None = None) -> None:
        bounds = tuple(bounds) if bounds else DEFAULT_LATENCY_BUCKETS_MS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"bucket bounds must be strictly increasing, "
                             f"got {bounds}")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        #: Per bucket: (value, reference, observation seq) or None.
        self._exemplars: list[tuple[float, str, int] | None] = \
            [None] * (len(bounds) + 1)
        self._lock = threading.Lock()

    @property
    def bounds(self) -> tuple[float, ...]:
        return self._bounds

    def observe(self, value: float, exemplar: str | None = None) -> None:
        value = float(value)
        index = self._bucket_index(value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if exemplar is not None:
                stored = self._exemplars[index]
                if (stored is None or value >= stored[0]
                        or self._counts[index] - stored[2]
                        > EXEMPLAR_STALENESS):
                    self._exemplars[index] = (value, exemplar,
                                              self._counts[index])

    def _bucket_index(self, value: float) -> int:
        # Linear scan: bucket lists are short (~17) and typical latencies
        # land early; bisect would not pay for its call overhead.
        for index, bound in enumerate(self._bounds):
            if value <= bound:
                return index
        return len(self._bounds)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        with self._lock:
            return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        with self._lock:
            return self._max if self._count else 0.0

    def percentile(self, q: float) -> float | None:
        """The estimated q-quantile (q in [0, 1]) of observed values,
        or ``None`` when nothing has been observed — an empty
        distribution has no quantiles, and 0 would read as "everything
        was instant"."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
            observed_min = self._min
            observed_max = self._max
        if total == 0:
            return None
        rank = max(q * total, 1e-12)
        cumulative = 0.0
        for index, count in enumerate(counts):
            cumulative += count
            if cumulative >= rank and count > 0:
                lower = self._bounds[index - 1] if index > 0 else 0.0
                if index < len(self._bounds):
                    upper = self._bounds[index]
                    fraction = (rank - (cumulative - count)) / count
                    value = lower + (upper - lower) * fraction
                else:
                    value = observed_max  # overflow bucket
                return min(max(value, observed_min), observed_max)
        return observed_max

    def cumulative_buckets(self) -> dict[str, int]:
        """Cumulative per-bucket counts keyed by upper bound
        (Prometheus ``le`` semantics, ``+Inf`` last)."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
        buckets: dict[str, int] = {}
        cumulative = 0
        for bound, count in zip(self._bounds, counts):
            cumulative += count
            buckets[f"{bound:g}"] = cumulative
        buckets["+Inf"] = total
        return buckets

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            counts = list(self._counts)
            exemplars = list(self._exemplars)
            total = self._count
            total_sum = self._sum
        buckets: dict[str, int] = {}
        cumulative = 0
        for bound, count in zip(self._bounds, counts):
            cumulative += count
            buckets[f"{bound:g}"] = cumulative
        buckets["+Inf"] = total

        def rounded(q: float) -> float | None:
            value = self.percentile(q)
            return None if value is None else round(value, 6)

        snap: dict[str, object] = {
            "count": total,
            "sum": round(total_sum, 6),
            "mean": round(total_sum / total, 6) if total else 0.0,
            "min": round(self.min, 6),
            "max": round(self.max, 6),
            "p50": rounded(0.50),
            "p95": rounded(0.95),
            "p99": rounded(0.99),
            "buckets": buckets,
        }
        labelled = {}
        bucket_labels = [f"{bound:g}" for bound in self._bounds] + ["+Inf"]
        for label, stored in zip(bucket_labels, exemplars):
            if stored is not None:
                labelled[label] = {"value": round(stored[0], 6),
                                   "trace_id": stored[1]}
        if labelled:
            snap["exemplars"] = labelled
        return snap


class MetricsRegistry:
    """A namespace of instruments, each keyed on (name, labels).

    ``counter``/``gauge``/``histogram`` are get-or-create and return the
    same instrument for the same identity, so call sites just ask for
    what they need — no separate registration step on the hot path.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, _LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, _LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, _LabelKey], Histogram] = {}

    # ------------------------------------------------------------------

    def counter(self, name: str, /, **labels: object) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, /, **labels: object) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge()
        return instrument

    def register_gauge(self, name: str, callback: Callable[[], float],
                       /, **labels: object) -> Gauge:
        """A gauge that evaluates *callback* at read time.  Re-registering
        the same identity replaces the callback (last writer wins), so
        rebuilding a pipeline does not accumulate stale closures."""
        gauge = self.gauge(name, **labels)
        gauge.set_callback(callback)
        return gauge

    def histogram(self, name: str,
                  buckets: tuple[float, ...] | None = None,
                  /, **labels: object) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram(buckets)
        return instrument

    # ------------------------------------------------------------------

    def iter_counters(self) -> Iterator[tuple[str, _LabelKey, float]]:
        with self._lock:
            items = list(self._counters.items())
        for (name, labels), counter in items:
            yield name, labels, counter.value

    def iter_gauges(self) -> Iterator[tuple[str, _LabelKey, float]]:
        with self._lock:
            items = list(self._gauges.items())
        for (name, labels), gauge in items:
            yield name, labels, gauge.value

    def iter_histograms(self) -> Iterator[tuple[str, _LabelKey, Histogram]]:
        with self._lock:
            items = list(self._histograms.items())
        for (name, labels), histogram in items:
            yield name, labels, histogram

    def snapshot(self) -> dict[str, dict[str, object]]:
        """A JSON-serialisable view of every instrument."""
        return {
            "counters": {_render_key(name, labels): value
                         for name, labels, value in self.iter_counters()},
            "gauges": {_render_key(name, labels): value
                       for name, labels, value in self.iter_gauges()},
            "histograms": {_render_key(name, labels): hist.snapshot()
                           for name, labels, hist
                           in self.iter_histograms()},
        }

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: list[str] = []
        seen_types: set[str] = set()

        def type_line(name: str, kind: str) -> None:
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for name, labels, value in self.iter_counters():
            prom = _prom_name(name)
            type_line(prom, "counter")
            lines.append(f"{prom}{_prom_labels(labels)} {value:g}")
        for name, labels, value in self.iter_gauges():
            prom = _prom_name(name)
            type_line(prom, "gauge")
            lines.append(f"{prom}{_prom_labels(labels)} {value:g}")
        for name, labels, histogram in self.iter_histograms():
            prom = _prom_name(name)
            type_line(prom, "histogram")
            for le, cumulative in histogram.cumulative_buckets().items():
                lines.append(f"{prom}_bucket"
                             f"{_prom_labels(labels, ('le', le))} "
                             f"{cumulative}")
            lines.append(f"{prom}_sum{_prom_labels(labels)} "
                         f"{histogram.sum:g}")
            lines.append(f"{prom}_count{_prom_labels(labels)} "
                         f"{histogram.count}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every instrument (test isolation; not a serving feature)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def _prom_name(name: str) -> str:
    return "".join(c if c.isalnum() or c in "_:" else "_" for c in name)


def _prom_escape(value: str) -> str:
    """Escape a label value per the text exposition format: backslash,
    double quote, and newline would otherwise corrupt the line."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_labels(labels: _LabelKey,
                 extra: tuple[str, str] | None = None) -> str:
    pairs = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{_prom_name(k)}="{_prom_escape(v)}"'
                     for k, v in pairs)
    return f"{{{inner}}}"


_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (what the demo server exposes)."""
    return _GLOBAL_REGISTRY
