"""Per-request answer-quality telemetry (the signal MUVE exists for).

Latency histograms say how fast a multiplot shipped; nothing in the
mechanical telemetry says whether it was any *good*.  MUVE's whole
contribution is minimising expected user disambiguation time under the
Section 4 cost model, so quality is measurable per request:

* **truth coverage** — the candidate probability mass actually shown in
  the final multiplot (and the mass highlighted red).  This is the
  probability the user's intended query is on screen at all.
* **expected vs. realized cost** — the planner's expected
  disambiguation cost against the cost model re-evaluated on the
  multiplot that actually shipped.  They differ exactly when a
  degradation rung rewrote the answer after planning (single-plot
  shrink, truncated candidates), so the drift is the price the
  resilience ladder charged in answer quality.
* **optimality gap** — ``(greedy - ilp) / ilp`` when the "best"
  strategy solved both: how far the fast heuristic was from the
  optimum on live traffic, the Figure 9 comparison as a serving metric.
* **intended-query outcome** — when the caller knows the ground truth
  (the workload generator and user simulator do), the rank of the
  intended query in the candidate distribution and whether the shipped
  multiplot highlighted / showed / missed it.
* **degradation depth** — how many resilience rungs fired.

:func:`assess_response` computes a :class:`QualityRecord` from a
finished response (bar and series multiplots both satisfy the duck
protocol the cost model needs); :func:`record_quality` folds it into
labeled histograms/counters; :func:`quality_summary` distils those
instruments for ``GET /api/quality`` and the regression sentinel.

Everything here is arithmetic over data the response already carries —
no extra query execution, no tracer dependency, so quality telemetry
works with ``MUVE_TRACING=off``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.observability.metrics import MetricsRegistry, get_registry

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.sqldb.query import AggregateQuery

__all__ = [
    "COVERAGE_BUCKETS",
    "QualityRecord",
    "assess_response",
    "assess_trend_response",
    "quality_summary",
    "record_quality",
    "render_quality",
]

#: Probability-mass buckets: dense near 1.0 where answers should live.
COVERAGE_BUCKETS: tuple[float, ...] = (
    0.1, 0.25, 0.5, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0)

#: Disambiguation-cost buckets in milliseconds of estimated user time
#: (the miss penalty alone is 30 s, hence the long tail).
COST_BUCKETS_MS: tuple[float, ...] = (
    500.0, 1000.0, 2000.0, 4000.0, 8000.0, 15000.0, 30000.0, 60000.0)

#: Signed realized-minus-expected drift: negative when the shipped
#: answer is cheaper than planned (rare), positive when degradation or
#: estimation error made it worse.
DRIFT_BUCKETS_MS: tuple[float, ...] = (
    -1000.0, -100.0, 0.0, 100.0, 1000.0, 5000.0, 15000.0, 30000.0)

#: Relative greedy-vs-ILP gap buckets (0 = greedy matched the optimum).
GAP_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0)


@dataclass(frozen=True)
class QualityRecord:
    """Answer quality of one request, attached to the response."""

    truth_coverage: float
    highlight_coverage: float
    expected_cost_ms: float
    realized_cost_ms: float
    optimality_gap: float | None
    degradation_depth: int
    intended_rank: int | None
    intended_outcome: str  # highlighted | shown | missing | unknown

    @property
    def cost_drift_ms(self) -> float:
        """Realized minus expected: what degradation/estimation cost."""
        return self.realized_cost_ms - self.expected_cost_ms

    def to_dict(self) -> dict[str, Any]:
        return {
            "truth_coverage": round(self.truth_coverage, 6),
            "highlight_coverage": round(self.highlight_coverage, 6),
            "expected_cost_ms": round(self.expected_cost_ms, 3),
            "realized_cost_ms": round(self.realized_cost_ms, 3),
            "cost_drift_ms": round(self.cost_drift_ms, 3),
            "optimality_gap": (round(self.optimality_gap, 6)
                               if self.optimality_gap is not None
                               else None),
            "degradation_depth": self.degradation_depth,
            "intended_rank": self.intended_rank,
            "intended_outcome": self.intended_outcome,
        }


def _coverage(multiplot, candidates) -> tuple[float, float]:
    """(shown mass, highlighted mass) of *candidates* in *multiplot*."""
    shown = highlighted = 0.0
    for candidate in candidates:
        bar = multiplot.bar_for(candidate.query)
        if bar is None:
            continue
        shown += candidate.probability
        if bar.highlighted:
            highlighted += candidate.probability
    return shown, highlighted


def _intended_outcome(multiplot, candidates,
                      intended: "AggregateQuery | None",
                      ) -> tuple[int | None, str]:
    if intended is None:
        return None, "unknown"
    rank = None
    for position, candidate in enumerate(candidates, start=1):
        if candidate.query == intended:
            rank = position
            break
    bar = multiplot.bar_for(intended)
    if bar is None:
        return rank, "missing"
    return rank, "highlighted" if bar.highlighted else "shown"


def _optimality_gap(planning) -> float | None:
    greedy = getattr(planning, "greedy_cost", None)
    ilp = getattr(planning, "ilp_cost", None)
    if greedy is None or ilp is None or ilp <= 0.0:
        return None
    return (greedy - ilp) / ilp


def assess_response(response,
                    intended: "AggregateQuery | None" = None,
                    cost_model=None) -> QualityRecord:
    """The quality record of a finished :class:`~repro.muve.MuveResponse`.

    *intended* is the ground-truth query when the caller knows it (the
    simulated workload does; live traffic does not).  The realized cost
    re-evaluates the Section 4 model on the multiplot that actually
    shipped — after any degradation rung — against the full candidate
    distribution the planner saw.
    """
    if cost_model is None:
        from repro.core.cost_model import UserCostModel
        cost_model = UserCostModel()
    multiplot = (response.updates[-1].multiplot if response.updates
                 else response.planning.multiplot)
    shown, highlighted = _coverage(multiplot, response.candidates)
    rank, outcome = _intended_outcome(multiplot, response.candidates,
                                      intended)
    return QualityRecord(
        truth_coverage=shown,
        highlight_coverage=highlighted,
        expected_cost_ms=response.planning.expected_cost,
        realized_cost_ms=cost_model.expected_cost(multiplot,
                                                  response.candidates),
        optimality_gap=_optimality_gap(response.planning),
        degradation_depth=len(response.degradations),
        intended_rank=rank,
        intended_outcome=outcome,
    )


def assess_trend_response(response,
                          intended: "AggregateQuery | None" = None,
                          cost_model=None) -> QualityRecord:
    """The quality record of a :class:`~repro.muve.TrendResponse` —
    series multiplots duck-type the protocol the cost model reads."""
    if cost_model is None:
        from repro.core.cost_model import UserCostModel
        cost_model = UserCostModel()
    multiplot = response.multiplot
    shown, highlighted = _coverage(multiplot, response.candidates)
    rank, outcome = _intended_outcome(multiplot, response.candidates,
                                      intended)
    return QualityRecord(
        truth_coverage=shown,
        highlight_coverage=highlighted,
        expected_cost_ms=response.expected_cost,
        realized_cost_ms=cost_model.expected_cost(multiplot,
                                                  response.candidates),
        optimality_gap=None,  # the series planner has one solver
        degradation_depth=len(response.degradations),
        intended_rank=rank,
        intended_outcome=outcome,
    )


def record_quality(record: QualityRecord,
                   metrics: MetricsRegistry | None = None,
                   request: str = "ask",
                   exemplar: str | None = None) -> None:
    """Fold one record into the ``quality_*`` instrument family."""
    registry = metrics if metrics is not None else get_registry()
    registry.histogram("quality_truth_coverage", COVERAGE_BUCKETS,
                       request=request).observe(record.truth_coverage,
                                                exemplar=exemplar)
    registry.histogram("quality_highlight_coverage", COVERAGE_BUCKETS,
                       request=request).observe(
                           record.highlight_coverage)
    registry.histogram("quality_expected_cost_ms", COST_BUCKETS_MS,
                       request=request).observe(record.expected_cost_ms)
    registry.histogram("quality_realized_cost_ms", COST_BUCKETS_MS,
                       request=request).observe(
                           record.realized_cost_ms, exemplar=exemplar)
    registry.histogram("quality_cost_drift_ms", DRIFT_BUCKETS_MS,
                       request=request).observe(record.cost_drift_ms)
    if record.optimality_gap is not None:
        registry.histogram("quality_optimality_gap", GAP_BUCKETS,
                           ).observe(max(record.optimality_gap, 0.0))
    registry.counter("quality_requests", request=request).inc()
    registry.counter("quality_intended", request=request,
                     outcome=record.intended_outcome).inc()
    if record.degradation_depth:
        registry.counter("quality_degraded", request=request).inc()
        registry.histogram("quality_degradation_depth",
                           (1.0, 2.0, 3.0, 5.0, 8.0),
                           request=request).observe(
                               float(record.degradation_depth))


def quality_summary(metrics: MetricsRegistry | None = None,
                    ) -> dict[str, Any]:
    """The ``quality_*`` family distilled to scalars — the payload of
    ``GET /api/quality`` and the input of the regression sentinel."""
    registry = metrics if metrics is not None else get_registry()
    histograms: dict[str, Any] = {}
    for name, labels, histogram in registry.iter_histograms():
        if not name.startswith("quality_") or histogram.count == 0:
            continue
        label_map = dict(labels)
        key = name[len("quality_"):]
        if "request" in label_map:
            key = f"{key}.{label_map['request']}"
        histograms[key] = {
            "count": histogram.count,
            "mean": round(histogram.mean, 6),
            "p50": round(histogram.percentile(0.50), 6),
            "p95": round(histogram.percentile(0.95), 6),
            "min": round(histogram.min, 6),
            "max": round(histogram.max, 6),
        }
    counters: dict[str, float] = {}
    requests_total = 0.0
    degraded_total = 0.0
    outcomes: dict[str, float] = {}
    for name, labels, value in registry.iter_counters():
        if not name.startswith("quality_"):
            continue
        label_map = dict(labels)
        if name == "quality_requests":
            requests_total += value
        elif name == "quality_degraded":
            degraded_total += value
        elif name == "quality_intended":
            outcome = label_map.get("outcome", "unknown")
            outcomes[outcome] = outcomes.get(outcome, 0.0) + value
        counters[_flat_key(name, label_map)] = value
    known = sum(count for outcome, count in outcomes.items()
                if outcome != "unknown")
    return {
        "requests": requests_total,
        "degraded_rate": (degraded_total / requests_total
                          if requests_total else 0.0),
        "intended_outcomes": outcomes,
        "intended_highlighted_rate": (
            outcomes.get("highlighted", 0.0) / known if known else None),
        "histograms": histograms,
        "counters": counters,
    }


def _flat_key(name: str, labels: dict[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def render_quality(metrics: MetricsRegistry | None = None) -> str:
    """The quality summary as terminal lines (``muve.cli --profile``)."""
    summary = quality_summary(metrics)
    if not summary["requests"]:
        return "quality telemetry: no requests assessed yet"
    lines = [f"quality telemetry ({summary['requests']:.0f} requests, "
             f"{summary['degraded_rate']:.1%} degraded):"]
    for key, stats in sorted(summary["histograms"].items()):
        lines.append(f"  {key:<32} mean {stats['mean']:>10.3f}  "
                     f"p95 {stats['p95']:>10.3f}  "
                     f"(n={stats['count']})")
    if summary["intended_outcomes"]:
        shares = ", ".join(
            f"{outcome}={count:.0f}" for outcome, count
            in sorted(summary["intended_outcomes"].items()))
        lines.append(f"  intended outcomes: {shares}")
    return "\n".join(lines)
