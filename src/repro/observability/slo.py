"""Service-level objectives with multi-window burn-rate monitoring.

An :class:`Objective` is declarative: a name, a *goal* (the fraction of
events that must be good, e.g. 0.95 for "95% of requests answer within
the latency threshold"), and the windows it is judged over (5 minutes
and 1 hour by default — the classic fast/slow pair).  The serving path
reports one boolean per event (:meth:`SloEngine.record`); the engine
keeps per-objective ring buffers of good/bad counts bucketed by time, so
memory is fixed regardless of traffic.

**Burn rate** is the SRE-workbook quantity: the observed bad fraction in
a window divided by the objective's error budget (``1 - goal``).  A burn
rate of 1.0 spends the budget exactly at the allowed pace; 14.4 spends a
30-day budget in 2 days.  ``GET /api/slo`` serves
:meth:`SloEngine.report`, which classifies each objective:

* ``fast_burn`` — every window's burn rate is at or above
  ``fast_burn_threshold`` (default 10.0): page-worthy, the budget is
  vanishing now.
* ``slow_burn`` — every window is at or above 1.0: ticket-worthy, the
  budget will not last the period.
* ``ok`` — otherwise (including "no traffic yet": an idle service burns
  nothing).

Requiring *every* window to burn is what makes the alert both fast and
sticky-free: the short window gives low detection latency, the long
window stops a single spike from paging, and recovery resets the short
window first.

The process-wide engine (:func:`get_slo_engine`) comes pre-registered
with the three serving objectives — latency, error rate, and
truth-coverage quality — thresholds configurable by environment::

    MUVE_SLO_LATENCY_MS    good request = answered within this (500)
    MUVE_SLO_COVERAGE      good answer = candidate probability mass
                           shown in the multiplot >= this (0.9)

Everything is stdlib-only and thread-safe; recording is O(1) (index
arithmetic on a preallocated ring), reporting is O(ring size).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.flags import env_raw

__all__ = [
    "DEFAULT_WINDOWS_SECONDS",
    "Objective",
    "SloEngine",
    "default_coverage_floor",
    "default_latency_slo_ms",
    "get_slo_engine",
    "render_slo",
]

#: The fast/slow window pair burn rates are computed over.
DEFAULT_WINDOWS_SECONDS: tuple[float, ...] = (300.0, 3600.0)

#: Ring bucket width: 15 s keeps the 1 h window at 240 slots while the
#: 5 m window still spans 20 buckets (5% quantisation error at worst).
_BUCKET_SECONDS = 15.0


def default_latency_slo_ms() -> float:
    """The request-latency threshold (``MUVE_SLO_LATENCY_MS``)."""
    raw = (env_raw("MUVE_SLO_LATENCY_MS") or "").strip()
    try:
        value = float(raw) if raw else 500.0
    except ValueError:
        raise ValueError(
            f"MUVE_SLO_LATENCY_MS must be a number, got {raw!r}"
        ) from None
    if value <= 0:
        raise ValueError(
            f"MUVE_SLO_LATENCY_MS must be positive, got {value}")
    return value


def default_coverage_floor() -> float:
    """The truth-coverage threshold (``MUVE_SLO_COVERAGE``)."""
    raw = (env_raw("MUVE_SLO_COVERAGE") or "").strip()
    try:
        value = float(raw) if raw else 0.9
    except ValueError:
        raise ValueError(
            f"MUVE_SLO_COVERAGE must be a number, got {raw!r}") from None
    if not 0.0 < value <= 1.0:
        raise ValueError(
            f"MUVE_SLO_COVERAGE must be in (0, 1], got {value}")
    return value


@dataclass(frozen=True)
class Objective:
    """One declarative objective: *goal* fraction of events are good."""

    name: str
    description: str
    goal: float
    windows: tuple[float, ...] = DEFAULT_WINDOWS_SECONDS

    def __post_init__(self) -> None:
        if not 0.0 < self.goal < 1.0:
            raise ValueError(
                f"goal must be in (0, 1) — a goal of 1.0 has no error "
                f"budget to burn — got {self.goal}")
        if not self.windows:
            raise ValueError("an objective needs at least one window")
        if any(w <= 0 for w in self.windows):
            raise ValueError(f"windows must be positive, "
                             f"got {self.windows}")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.goal


class _Ring:
    """Good/bad counts bucketed by wall-clock, fixed memory.

    Slot *i* of the ring holds the counts for time-bucket ``b`` where
    ``b % slots == i``; a slot stamped with an older bucket index is
    zeroed on first touch, so expiry costs nothing until the slot is
    reused or read.
    """

    __slots__ = ("_span", "_stamps", "_good", "_bad", "_lock")

    def __init__(self, longest_window: float) -> None:
        slots = max(2, int(longest_window / _BUCKET_SECONDS) + 1)
        self._span = slots
        self._stamps = [-1] * slots
        self._good = [0] * slots
        self._bad = [0] * slots
        self._lock = threading.Lock()

    def record(self, good: bool, now: float) -> None:
        bucket = int(now / _BUCKET_SECONDS)
        index = bucket % self._span
        with self._lock:
            if self._stamps[index] != bucket:
                self._stamps[index] = bucket
                self._good[index] = 0
                self._bad[index] = 0
            if good:
                self._good[index] += 1
            else:
                self._bad[index] += 1

    def window_counts(self, window: float, now: float) -> tuple[int, int]:
        """(good, bad) over the trailing *window* seconds."""
        current = int(now / _BUCKET_SECONDS)
        oldest = current - int(window / _BUCKET_SECONDS)
        good = bad = 0
        with self._lock:
            for index in range(self._span):
                stamp = self._stamps[index]
                if oldest < stamp <= current:
                    good += self._good[index]
                    bad += self._bad[index]
        return good, bad


class SloEngine:
    """Registered objectives plus their ring-buffered event history.

    ``clock`` is injectable for tests; production uses ``time.time`` so
    windows mean wall-clock (monotonic would also work — only
    differences matter — but wall-clock makes the report timestamps
    meaningful to an operator).
    """

    def __init__(self, clock: Callable[[], float] = time.time,
                 fast_burn_threshold: float = 10.0) -> None:
        self._clock = clock
        self.fast_burn_threshold = fast_burn_threshold
        self._objectives: dict[str, Objective] = {}
        self._rings: dict[str, _Ring] = {}
        self._lock = threading.Lock()

    def register(self, objective: Objective) -> Objective:
        """Idempotent for an identical definition; re-registering a
        *different* definition under the same name raises (two call
        sites disagreeing about a goal is a bug, not a race)."""
        with self._lock:
            existing = self._objectives.get(objective.name)
            if existing is not None:
                if existing != objective:
                    raise ValueError(
                        f"objective {objective.name!r} already "
                        f"registered with a different definition")
                return existing
            self._objectives[objective.name] = objective
            self._rings[objective.name] = _Ring(max(objective.windows))
            return objective

    def ensure(self, objective: Objective) -> Objective:
        """Register *objective* unless some definition already owns the
        name (serving code path: wire defaults without clobbering an
        operator's deliberate override)."""
        with self._lock:
            existing = self._objectives.get(objective.name)
            if existing is not None:
                return existing
            self._objectives[objective.name] = objective
            self._rings[objective.name] = _Ring(max(objective.windows))
            return objective

    def objectives(self) -> tuple[Objective, ...]:
        with self._lock:
            return tuple(self._objectives.values())

    def record(self, name: str, good: bool) -> None:
        """Count one event against objective *name* (must exist)."""
        ring = self._rings.get(name)
        if ring is None:
            raise KeyError(f"unknown SLO objective {name!r}")
        ring.record(good, self._clock())

    # ------------------------------------------------------------------

    def report(self) -> dict[str, object]:
        """Burn rates per objective per window plus an alert status."""
        now = self._clock()
        objectives = {}
        for objective in self.objectives():
            ring = self._rings[objective.name]
            windows = {}
            burns = []
            for window in objective.windows:
                good, bad = ring.window_counts(window, now)
                events = good + bad
                bad_fraction = bad / events if events else 0.0
                burn = bad_fraction / objective.error_budget
                burns.append(burn)
                windows[f"{window:g}s"] = {
                    "events": events,
                    "good": good,
                    "bad": bad,
                    "bad_fraction": round(bad_fraction, 6),
                    "burn_rate": round(burn, 4),
                }
            if burns and min(burns) >= self.fast_burn_threshold:
                status = "fast_burn"
            elif burns and min(burns) >= 1.0:
                status = "slow_burn"
            else:
                status = "ok"
            objectives[objective.name] = {
                "description": objective.description,
                "goal": objective.goal,
                "error_budget": round(objective.error_budget, 6),
                "windows": windows,
                "status": status,
            }
        return {
            "generated_at": round(now, 3),
            "fast_burn_threshold": self.fast_burn_threshold,
            "objectives": objectives,
        }


def render_slo(engine: "SloEngine | None" = None) -> str:
    """The report as a terminal table (``muve.cli --profile``)."""
    engine = engine if engine is not None else get_slo_engine()
    report = engine.report()
    objectives = report["objectives"]
    if not objectives:
        return "slo report: no objectives registered"
    window_names: list[str] = []
    for entry in objectives.values():
        for window in entry["windows"]:
            if window not in window_names:
                window_names.append(window)
    width = max(len("objective"), *(len(name) for name in objectives))
    header = f"{'objective':<{width}}  {'goal':>6}  {'status':>9}"
    for window in window_names:
        header += f"  {'burn ' + window:>12}"
    lines = ["slo burn rates:", header, "-" * len(header)]
    for name, entry in objectives.items():
        line = (f"{name:<{width}}  {entry['goal']:>6.2%}  "
                f"{entry['status']:>9}")
        for window in window_names:
            stats = entry["windows"].get(window)
            cell = (f"{stats['burn_rate']:.2f}"
                    if stats is not None else "-")
            line += f"  {cell:>12}"
        lines.append(line)
    return "\n".join(lines)


def default_objectives() -> tuple[Objective, ...]:
    """The three serving objectives every MUVE process watches."""
    latency_ms = default_latency_slo_ms()
    coverage = default_coverage_floor()
    return (
        Objective(
            name="latency_p95",
            description=f"95% of requests answer within "
                        f"{latency_ms:g} ms",
            goal=0.95),
        Objective(
            name="error_rate",
            description="99% of requests succeed",
            goal=0.99),
        Objective(
            name="truth_coverage",
            description=f"95% of answers show >= {coverage:g} of the "
                        f"candidate probability mass",
            goal=0.95),
    )


_GLOBAL_ENGINE: SloEngine | None = None
_GLOBAL_LOCK = threading.Lock()


def get_slo_engine() -> SloEngine:
    """The process-wide engine (what ``GET /api/slo`` serves), created
    on first use with the default serving objectives registered."""
    global _GLOBAL_ENGINE
    with _GLOBAL_LOCK:
        if _GLOBAL_ENGINE is None:
            engine = SloEngine()
            for objective in default_objectives():
                engine.register(objective)
            _GLOBAL_ENGINE = engine
        return _GLOBAL_ENGINE
