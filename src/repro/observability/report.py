"""Snapshot-and-diff machinery for the metrics regression sentinel.

``scripts/obs_report.py`` runs a deterministic voice workload, distils
the resulting instruments into a flat snapshot
(:func:`collect_report`), and diffs it against a committed baseline
(:func:`compare_reports`) under per-metric tolerance bands.  The
sentinel turns the quality telemetry into a gate: a change that makes
answers slower, less covered, or more often missing the intended query
fails ``make sentinel`` before it merges, the same way the tracing
overhead gate pins the cost of observability itself.

Tolerance bands are directional — latency regresses *upwards*, truth
coverage regresses *downwards* — and allow the larger of a relative and
an absolute slack, so tiny baselines are not held to sub-noise
precision.  Latency is the only machine-dependent dimension; its
relative band is configurable (``MUVE_SENTINEL_LATENCY_REL``) and the
quality dimensions are deterministic given the workload seeds, so their
bands are tight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.observability.metrics import MetricsRegistry
from repro.observability.quality import quality_summary

__all__ = [
    "Band",
    "DEFAULT_BANDS",
    "Regression",
    "collect_report",
    "compare_reports",
    "render_regressions",
]

REPORT_VERSION = 1


@dataclass(frozen=True)
class Band:
    """Allowed worsening for one metric family.

    ``direction`` says which way is worse: ``"higher"`` (latency,
    costs, error counts) or ``"lower"`` (coverage, hit rates).  The
    allowed slack is ``max(rel * |baseline|, absolute)``.
    """

    rel: float
    absolute: float
    direction: str = "higher"

    def allowed(self, baseline: float) -> float:
        return max(self.rel * abs(baseline), self.absolute)

    def worsening(self, baseline: float, current: float) -> float:
        """How far *current* moved in the bad direction (<= 0 is
        an improvement)."""
        delta = current - baseline
        return delta if self.direction == "higher" else -delta


#: Ordered (prefix, band) rules; the longest matching prefix governs a
#: key, so a specific rule can carve an exception out of a family rule.
DEFAULT_BANDS: tuple[tuple[str, Band], ...] = (
    ("latency.", Band(rel=0.15, absolute=3.0, direction="higher")),
    ("quality.truth_coverage",
     Band(rel=0.0, absolute=0.02, direction="lower")),
    ("quality.highlight_coverage",
     Band(rel=0.0, absolute=0.05, direction="lower")),
    ("quality.realized_cost_ms",
     Band(rel=0.10, absolute=100.0, direction="higher")),
    ("quality.cost_drift_ms",
     Band(rel=0.0, absolute=250.0, direction="higher")),
    ("quality.degraded_rate",
     Band(rel=0.0, absolute=0.02, direction="higher")),
    ("quality.intended_highlighted_rate",
     Band(rel=0.0, absolute=0.05, direction="lower")),
    ("quality.intended_missing_rate",
     Band(rel=0.0, absolute=0.05, direction="higher")),
    ("user_sim.read_ms", Band(rel=0.10, absolute=100.0,
                              direction="higher")),
    ("user_sim.found_rate", Band(rel=0.0, absolute=0.02,
                                 direction="lower")),
    ("errors.", Band(rel=0.0, absolute=0.0, direction="higher")),
)


@dataclass(frozen=True)
class Regression:
    """One metric that moved outside its tolerance band."""

    key: str
    baseline: float
    current: float
    allowed: float
    direction: str

    def describe(self) -> str:
        arrow = "rose" if self.direction == "higher" else "fell"
        return (f"{self.key}: {arrow} from {self.baseline:.4f} to "
                f"{self.current:.4f} (allowed slack {self.allowed:.4f})")


# ----------------------------------------------------------------------
# Collection


def collect_report(metrics: MetricsRegistry,
                   meta: dict[str, Any] | None = None,
                   extra: dict[str, float] | None = None,
                   ) -> dict[str, Any]:
    """Distil *metrics* into the flat snapshot the sentinel diffs.

    Only dimensions with a tolerance rule are worth collecting; the
    full registry snapshot stays available at ``/api/metrics`` for
    humans, this is the machine-comparable subset.  *extra* entries are
    merged last and win on collision — the sentinel script uses this to
    replace the bucket-interpolated registry latencies with exact
    quantiles over its own raw timings (bucket interpolation quantizes
    p95 too coarsely to gate on).
    """
    flat: dict[str, float] = {}
    for name, labels, histogram in metrics.iter_histograms():
        if histogram.count == 0:
            continue
        label_map = dict(labels)
        if name == "muve_request_ms":
            request = label_map.get("request", "ask")
            flat[f"latency.{request}.p50_ms"] = \
                round(histogram.percentile(0.50), 4)
            flat[f"latency.{request}.p95_ms"] = \
                round(histogram.percentile(0.95), 4)
            flat[f"latency.{request}.mean_ms"] = \
                round(histogram.mean, 4)
        elif name == "user_sim_read_ms":
            target = label_map.get("target", "any")
            flat[f"user_sim.read_ms.{target}.mean"] = \
                round(histogram.mean, 4)
    quality = quality_summary(metrics)
    for key, stats in quality["histograms"].items():
        base, _, request = key.partition(".")
        suffix = f".{request}" if request else ""
        flat[f"quality.{base}{suffix}.mean"] = stats["mean"]
    if quality["requests"]:
        flat["quality.degraded_rate"] = round(
            quality["degraded_rate"], 6)
        outcomes = quality["intended_outcomes"]
        known = sum(count for outcome, count in outcomes.items()
                    if outcome != "unknown")
        if known:
            flat["quality.intended_highlighted_rate"] = round(
                outcomes.get("highlighted", 0.0) / known, 6)
            flat["quality.intended_missing_rate"] = round(
                outcomes.get("missing", 0.0) / known, 6)
    sim_outcomes: dict[str, float] = {}
    errors = 0.0
    for name, labels, value in metrics.iter_counters():
        if name == "user_sim_outcomes":
            sim_outcomes[dict(labels).get("target", "any")] = value
        elif name == "errors":
            errors += value
    if sim_outcomes:
        total = sum(sim_outcomes.values())
        found = total - sim_outcomes.get("missing", 0.0)
        flat["user_sim.found_rate"] = round(found / total, 6)
    flat["errors.total"] = errors
    flat.update(extra or {})
    return {
        "version": REPORT_VERSION,
        "meta": dict(meta or {}),
        "metrics": flat,
    }


# ----------------------------------------------------------------------
# Comparison


def _band_for(key: str,
              bands: tuple[tuple[str, Band], ...]) -> Band | None:
    best: tuple[int, Band] | None = None
    for prefix, band in bands:
        if key.startswith(prefix):
            if best is None or len(prefix) > best[0]:
                best = (len(prefix), band)
    return best[1] if best is not None else None


def compare_reports(baseline: dict[str, Any], current: dict[str, Any],
                    bands: tuple[tuple[str, Band], ...] = DEFAULT_BANDS,
                    ) -> list[Regression]:
    """Every baseline metric that worsened beyond its band.

    A key present in the baseline but absent from the current run is a
    regression too (the instrument disappeared — usually a renamed
    metric silently dropping out of the gate); keys new in the current
    run are ignored, they will be judged once a baseline contains them.
    """
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    regressions: list[Regression] = []
    for key, base_value in sorted(base_metrics.items()):
        band = _band_for(key, bands)
        if band is None:
            continue
        cur_value = cur_metrics.get(key)
        if cur_value is None:
            regressions.append(Regression(
                key=key, baseline=float(base_value),
                current=float("nan"), allowed=band.allowed(base_value),
                direction=band.direction))
            continue
        worsening = band.worsening(float(base_value), float(cur_value))
        if worsening > band.allowed(float(base_value)):
            regressions.append(Regression(
                key=key, baseline=float(base_value),
                current=float(cur_value),
                allowed=band.allowed(float(base_value)),
                direction=band.direction))
    return regressions


def render_regressions(regressions: list[Regression]) -> str:
    if not regressions:
        return "sentinel: no regressions"
    lines = [f"sentinel: {len(regressions)} regression(s)"]
    for regression in regressions:
        lines.append(f"  FAIL {regression.describe()}")
    return "\n".join(lines)
