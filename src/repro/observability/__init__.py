"""Observability for the MUVE serving path: tracing, metrics, logging.

Three zero-dependency building blocks:

* :mod:`repro.observability.tracing` — per-request span trees
  (:func:`trace_span`, :class:`Trace`, the :class:`TraceLog` ring
  buffer), contextvar-propagated so concurrent requests never
  interleave.  Disabled entirely with ``MUVE_TRACING=off``.
* :mod:`repro.observability.metrics` — process-wide counters, gauges,
  and fixed-bucket histograms with p50/p95/p99 estimation
  (:class:`MetricsRegistry`, :func:`get_registry`).
* :mod:`repro.observability.logs` — structured JSON-lines event logging
  (:class:`StructuredLogger`), used for the demo server's access log.

See DESIGN.md, "Observability" for the span taxonomy, metric names, and
the overhead budget (``make profile`` enforces <= 5%).
"""

from repro.observability.logs import StructuredLogger
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.observability.profile import render_profile
from repro.observability.quality import (
    QualityRecord,
    assess_response,
    quality_summary,
    record_quality,
)
from repro.observability.slo import (
    Objective,
    SloEngine,
    get_slo_engine,
)
from repro.observability.tracing import (
    NOOP_SPAN,
    Span,
    Trace,
    TraceLog,
    current_span,
    current_trace_id,
    get_trace_log,
    register_trace_log_metrics,
    set_tracing_enabled,
    trace_span,
    tracing_enabled,
)
from repro.observability.workload import (
    SlidingTopK,
    SpaceSavingSketch,
    WorkloadAnalytics,
    get_workload_analytics,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Objective",
    "QualityRecord",
    "SlidingTopK",
    "SloEngine",
    "SpaceSavingSketch",
    "Span",
    "StructuredLogger",
    "Trace",
    "TraceLog",
    "WorkloadAnalytics",
    "assess_response",
    "current_span",
    "current_trace_id",
    "get_registry",
    "get_slo_engine",
    "get_trace_log",
    "get_workload_analytics",
    "quality_summary",
    "record_quality",
    "register_trace_log_metrics",
    "render_profile",
    "set_tracing_enabled",
    "trace_span",
    "tracing_enabled",
]
