"""Span-based request tracing (zero-dependency, contextvar-propagated).

One request produces one :class:`Trace`: a tree of :class:`Span` objects,
each timing a pipeline stage (speech, translation, candidate generation,
planning, execution, rendering) with free-form attributes (solver choice,
cache hits, rows scanned, cost-estimation error).  This is the
measurement substrate of the paper's evaluation — planning time vs.
execution time per request (Figures 8–13), now recorded on the live
serving path rather than in offline experiment harnesses.

Usage::

    with trace_span("planner.plan") as span:
        span.set_attribute("candidates", len(problem.candidates))
        ...

Propagation uses a :mod:`contextvars` variable, so concurrent requests on
different threads (the demo server, ``--load-test --workers``) build
disjoint trees — spans never leak across requests.  When a root span
(no active parent) finishes, its :class:`Trace` is appended to the global
:class:`TraceLog` ring buffer (``GET /api/traces``; capacity via
``MUVE_TRACE_LOG_SIZE``, default 256) and its duration is recorded into
the ``span_ms`` histogram family of the default metrics registry — with
the request's trace id as the bucket exemplar — which is what
``muve.cli --profile`` tabulates.

Tracing is **on by default** and globally disabled with the environment
variable ``MUVE_TRACING=off`` (or :func:`set_tracing_enabled`).  The
disabled path is a no-op: :func:`trace_span` yields a shared inert span
without allocating, timing, or touching the context variable — the
guarantee ``make profile`` measures.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator

from repro.flags import env_raw, env_switch

__all__ = [
    "DEFAULT_TRACE_LOG_CAPACITY",
    "Span",
    "Trace",
    "TraceLog",
    "current_span",
    "current_trace_id",
    "get_trace_log",
    "register_trace_log_metrics",
    "set_tracing_enabled",
    "trace_log_capacity_from_env",
    "trace_span",
    "tracing_enabled",
]


def _env_enabled() -> bool:
    return env_switch("MUVE_TRACING")


_enabled = _env_enabled()


def tracing_enabled() -> bool:
    return _enabled


def set_tracing_enabled(enabled: bool) -> None:
    """Toggle tracing process-wide (overrides ``MUVE_TRACING``)."""
    global _enabled
    _enabled = bool(enabled)


class Span:
    """One timed stage of a request, with attributes and child spans.

    A span records into whatever tree the current context is building;
    within one request the tree is built single-threaded, so no locking
    is needed on ``children``.
    """

    __slots__ = ("name", "attributes", "children", "status",
                 "duration_ms")

    #: Real spans record; the shared no-op span reports False so callers
    #: can skip building expensive attributes when tracing is off.
    recording = True

    def __init__(self, name: str,
                 attributes: dict[str, Any] | None = None) -> None:
        self.name = name
        self.attributes: dict[str, Any] = attributes or {}
        self.children: list[Span] = []
        self.status = "ok"
        self.duration_ms = 0.0

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def iter_spans(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 4),
            "status": self.status,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.duration_ms:.3f} ms, "
                f"{len(self.children)} child(ren))")


class _NoopSpan:
    """The inert span yielded when tracing is disabled (or no span is
    active): every operation is a cheap no-op."""

    __slots__ = ()
    recording = False
    name = ""
    status = "ok"
    duration_ms = 0.0
    attributes: dict[str, Any] = {}
    children: list[Span] = []

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def iter_spans(self) -> Iterator[Span]:
        return iter(())

    def to_dict(self) -> dict[str, Any]:
        return {}


NOOP_SPAN = _NoopSpan()

_CURRENT: contextvars.ContextVar[Span | None] = contextvars.ContextVar(
    "muve_current_span", default=None)
_CURRENT_TRACE_ID: contextvars.ContextVar[str | None] = \
    contextvars.ContextVar("muve_current_trace_id", default=None)


def current_span() -> Span | _NoopSpan:
    """The innermost active span of this context (no-op span if none) —
    lets leaf code annotate whatever stage is running without plumbing."""
    if not _enabled:
        return NOOP_SPAN
    span = _CURRENT.get()
    return span if span is not None else NOOP_SPAN


def current_trace_id() -> str | None:
    """The trace id of the request this context is serving, assigned
    when its root span opened; ``None`` outside a trace (or with tracing
    off).  This is what histogram exemplars carry, linking a latency
    bucket back to its ``/api/traces`` entry."""
    if not _enabled:
        return None
    return _CURRENT_TRACE_ID.get()


class Trace:
    """A finished request: its root span plus identity and wall-clock."""

    __slots__ = ("trace_id", "started_at", "root")

    def __init__(self, trace_id: str, started_at: float,
                 root: Span) -> None:
        self.trace_id = trace_id
        self.started_at = started_at
        self.root = root

    @property
    def duration_ms(self) -> float:
        return self.root.duration_ms

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "started_at": round(self.started_at, 6),
            "duration_ms": round(self.root.duration_ms, 4),
            "root": self.root.to_dict(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), default=str)


#: Default ring-buffer capacity; override process-wide with the
#: ``MUVE_TRACE_LOG_SIZE`` environment variable.
DEFAULT_TRACE_LOG_CAPACITY = 256


def trace_log_capacity_from_env() -> int:
    """The validated ``MUVE_TRACE_LOG_SIZE`` value (default 256).

    Raises :class:`ValueError` on a non-integer or non-positive setting
    — a silently ignored misconfiguration would leave an operator
    convinced they resized the buffer.
    """
    raw = (env_raw("MUVE_TRACE_LOG_SIZE") or "").strip()
    if not raw:
        return DEFAULT_TRACE_LOG_CAPACITY
    try:
        capacity = int(raw)
    except ValueError:
        raise ValueError(
            f"MUVE_TRACE_LOG_SIZE must be an integer, got {raw!r}"
        ) from None
    if capacity <= 0:
        raise ValueError(
            f"MUVE_TRACE_LOG_SIZE must be positive, got {capacity}")
    return capacity


class TraceLog:
    """A bounded ring buffer of recent traces (oldest evicted first)."""

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is None:
            capacity = trace_log_capacity_from_env()
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._traces: deque[Trace] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.capacity = capacity

    def append(self, trace: Trace) -> None:
        with self._lock:
            self._traces.append(trace)

    def tail(self, n: int = 20) -> list[Trace]:
        """The most recent *n* traces, oldest first."""
        with self._lock:
            items = list(self._traces)
        return items[-max(n, 0):]

    def to_jsonl(self, n: int | None = None) -> str:
        """The tail as JSON lines, one trace per line (export format)."""
        traces = self.tail(n if n is not None else self.capacity)
        return "\n".join(trace.to_json() for trace in traces)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


def _default_trace_log() -> TraceLog:
    """The process-wide log, built at import: a malformed
    ``MUVE_TRACE_LOG_SIZE`` must not make ``import repro`` impossible,
    so here (and only here) validation degrades to a warning."""
    try:
        return TraceLog()
    except ValueError as exc:
        import warnings
        warnings.warn(f"{exc}; using default capacity "
                      f"{DEFAULT_TRACE_LOG_CAPACITY}", stacklevel=1)
        return TraceLog(DEFAULT_TRACE_LOG_CAPACITY)


_TRACE_LOG = _default_trace_log()
_trace_ids = itertools.count(1)


def get_trace_log() -> TraceLog:
    """The process-wide ring buffer of finished request traces."""
    return _TRACE_LOG


def register_trace_log_metrics(registry=None) -> None:
    """Expose the global trace log as gauges: ``trace_log_entries``
    (current fill) and ``trace_log_capacity`` (configured size), pulled
    through callbacks at read time."""
    from repro.observability.metrics import get_registry
    registry = registry if registry is not None else get_registry()
    registry.register_gauge("trace_log_entries",
                            lambda: float(len(_TRACE_LOG)))
    registry.register_gauge("trace_log_capacity",
                            lambda: float(_TRACE_LOG.capacity))


@contextmanager
def trace_span(name: str, **attributes: Any):
    """Time a stage as a span nested under the context's current span.

    Yields the :class:`Span` (so callers can ``set_attribute``).  On
    exit the span is attached to its parent; a span without a parent is
    a request root — its finished :class:`Trace` goes to the global
    trace log.  An escaping exception marks the span ``status="error"``
    with the exception type and propagates.  Every finished span's
    duration is recorded in the ``span_ms{name=...}`` histogram of the
    default metrics registry.
    """
    if not _enabled:
        yield NOOP_SPAN
        return
    parent = _CURRENT.get()
    span = Span(name, dict(attributes) if attributes else None)
    started_at = time.time() if parent is None else 0.0
    id_token = None
    if parent is None:
        # The trace id is assigned when the root *opens* so every span
        # finishing inside the request (children finish first) can stamp
        # it onto its histogram exemplar.
        id_token = _CURRENT_TRACE_ID.set(f"t{next(_trace_ids):08d}")
    token = _CURRENT.set(span)
    begin = time.perf_counter()
    try:
        yield span
    except BaseException as exc:
        span.status = "error"
        span.attributes.setdefault("error_type", type(exc).__name__)
        raise
    finally:
        span.duration_ms = (time.perf_counter() - begin) * 1000.0
        _CURRENT.reset(token)
        trace_id = _CURRENT_TRACE_ID.get()
        if parent is None:
            _TRACE_LOG.append(Trace(trace_id, started_at, span))
        else:
            parent.children.append(span)
        _record_span_metrics(span, trace_id)
        if id_token is not None:
            _CURRENT_TRACE_ID.reset(id_token)


def _record_span_metrics(span: Span, trace_id: str | None) -> None:
    from repro.observability.metrics import get_registry
    get_registry().histogram("span_ms", name=span.name).observe(
        span.duration_ms, exemplar=trace_id)
