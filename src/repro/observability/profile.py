"""Per-stage profile rendering (``muve.cli --profile``).

Turns the ``span_ms`` histogram family — one histogram per span name,
recorded automatically by the tracer — into a terminal table: how often
each pipeline stage ran, how much time it took in total, and its latency
distribution.  This is the before/after instrument every performance PR
reads first.
"""

from __future__ import annotations

from repro.observability.metrics import MetricsRegistry, get_registry
from repro.observability.tracing import tracing_enabled

__all__ = ["render_profile"]

#: Span names that time an entire request; their summed total is the
#: denominator for the per-stage share column.
_REQUEST_SPANS = ("request", "muve.ask", "muve.ask_voice",
                  "muve.ask_trend")


def render_profile(registry: MetricsRegistry | None = None) -> str:
    """A per-stage breakdown table from the registry's span histograms."""
    registry = registry if registry is not None else get_registry()
    rows = []
    for name, labels, histogram in registry.iter_histograms():
        if name != "span_ms" or histogram.count == 0:
            continue
        label_map = dict(labels)
        stage = label_map.get("name", "?")
        rows.append((stage, histogram))
    if not rows:
        if not tracing_enabled():
            return ("per-stage profile: no data — tracing is disabled "
                    "(MUVE_TRACING=off)")
        return "per-stage profile: no spans recorded yet"

    request_total = sum(histogram.sum for stage, histogram in rows
                        if stage in _REQUEST_SPANS)
    denominator = request_total or max(histogram.sum
                                       for _, histogram in rows)
    rows.sort(key=lambda pair: -pair[1].sum)

    width = max(len("stage"), *(len(stage) for stage, _ in rows))
    header = (f"{'stage':<{width}}  {'calls':>7}  {'total ms':>10}  "
              f"{'mean':>8}  {'p50':>8}  {'p95':>8}  {'share':>6}")
    lines = ["per-stage profile (span_ms):", header, "-" * len(header)]
    for stage, histogram in rows:
        share = histogram.sum / denominator if denominator else 0.0
        lines.append(
            f"{stage:<{width}}  {histogram.count:>7}  "
            f"{histogram.sum:>10.1f}  {histogram.mean:>8.2f}  "
            f"{histogram.percentile(0.50):>8.2f}  "
            f"{histogram.percentile(0.95):>8.2f}  {share:>6.0%}")
    lines.append(
        "(share is relative to total request time; nested stages "
        "overlap their parents)")
    return "\n".join(lines)
